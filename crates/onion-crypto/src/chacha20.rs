//! The ChaCha20 stream cipher (RFC 8439), used for onion layer encryption
//! and the FS Protect filesystem.
//!
//! The cipher exposes both a one-shot XOR ([`ChaCha20::apply`]) and a
//! seekable keystream ([`ChaCha20::seek`]); Tor-style relay crypto applies
//! each hop's cipher as a continuous stream across cells, which the
//! position tracking here supports directly.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// How many blocks the bulk fast path computes per round-function pass.
const WIDE: usize = 8;
/// Lane count of the narrower pass that picks up cell-sized runs too short
/// for the bulk path (a 509-byte relay payload has only 7 whole blocks).
const NARROW: usize = 4;

/// `N` lanes of one ChaCha state word, one lane per block. Whole-value
/// semantics (every op returns a fresh `Lanes`) keep the dataflow free of
/// aliasing so the elementwise loops compile to single vector instructions
/// on targets with ≥`N`×32-bit SIMD.
#[derive(Copy, Clone)]
struct Lanes<const N: usize>([u32; N]);

impl<const N: usize> Lanes<N> {
    #[inline(always)]
    fn splat(x: u32) -> Self {
        Lanes([x; N])
    }

    #[inline(always)]
    fn add(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, x) in out.iter_mut().zip(other.0.iter()) {
            *o = o.wrapping_add(*x);
        }
        Lanes(out)
    }

    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        let mut out = self.0;
        for (o, x) in out.iter_mut().zip(other.0.iter()) {
            *o ^= *x;
        }
        Lanes(out)
    }

    #[inline(always)]
    fn rotl(self, r: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.rotate_left(r);
        }
        Lanes(out)
    }
}

/// One ChaCha quarter round across all lanes of four state rows.
macro_rules! quarter_wide {
    ($x:ident, $a:tt, $b:tt, $c:tt, $d:tt) => {
        $x[$a] = $x[$a].add($x[$b]);
        $x[$d] = $x[$d].xor($x[$a]).rotl(16);
        $x[$c] = $x[$c].add($x[$d]);
        $x[$b] = $x[$b].xor($x[$c]).rotl(12);
        $x[$a] = $x[$a].add($x[$b]);
        $x[$d] = $x[$d].xor($x[$a]).rotl(8);
        $x[$c] = $x[$c].add($x[$d]);
        $x[$b] = $x[$b].xor($x[$c]).rotl(7);
    };
}

/// A ChaCha20 cipher instance: key + nonce + stream position.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    /// Next block counter.
    counter: u32,
    /// Buffered keystream of the current block.
    block: [u8; 64],
    /// Offset into `block` of the next unused keystream byte (64 = exhausted).
    offset: usize,
}

impl ChaCha20 {
    /// Create a cipher with block counter starting at 0.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, item) in k.iter_mut().enumerate() {
            *item =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        let mut n = [0u32; 3];
        for (i, item) in n.iter_mut().enumerate() {
            *item = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter: 0,
            block: [0; 64],
            offset: 64,
        }
    }

    /// Reposition the keystream to absolute byte `pos`.
    ///
    /// The IETF ChaCha20 block counter is 32 bits, so the keystream is
    /// 2^38 bytes (256 GiB) long; positions past the end are debug-asserted
    /// and saturate to the final block in release builds rather than
    /// silently truncating to a wrapped-around counter.
    pub fn seek(&mut self, pos: u64) {
        let block = pos / 64;
        debug_assert!(
            block <= u64::from(u32::MAX),
            "ChaCha20::seek past the end of the 2^38-byte keystream"
        );
        self.counter = block.min(u64::from(u32::MAX)) as u32;
        let within = (pos % 64) as usize;
        if within == 0 {
            self.offset = 64;
        } else {
            self.refill();
            // refill() advanced counter; it generated the block for the
            // pre-increment counter, which is what we want.
            self.offset = within;
        }
    }

    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// The initial block state for a given counter value.
    #[inline]
    fn init_state(&self, counter: u32) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        state
    }

    /// The keystream block for `counter`, as 16 little-endian words.
    fn block_words(&self, counter: u32) -> [u32; 16] {
        let initial = self.init_state(counter);
        let mut state = initial;
        for _ in 0..10 {
            // column rounds
            Self::quarter(&mut state, 0, 4, 8, 12);
            Self::quarter(&mut state, 1, 5, 9, 13);
            Self::quarter(&mut state, 2, 6, 10, 14);
            Self::quarter(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter(&mut state, 0, 5, 10, 15);
            Self::quarter(&mut state, 1, 6, 11, 12);
            Self::quarter(&mut state, 2, 7, 8, 13);
            Self::quarter(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        state
    }

    /// `N` consecutive keystream blocks starting at `counter`, laid out
    /// word-major (`[word][lane]`). Lane `l` is the block for
    /// `counter + l`; the rounds run elementwise across lanes. Inlined so
    /// the key/nonce splats hoist out of the caller's per-group loop.
    #[inline(always)]
    fn wide_block_words<const N: usize>(&self, counter: u32) -> [[u32; N]; 16] {
        let template = self.init_state(counter);
        let mut initial = [Lanes::<N>::splat(0); 16];
        for (row, word) in initial.iter_mut().zip(template.iter()) {
            *row = Lanes::splat(*word);
        }
        let mut counters = [0u32; N];
        for (l, c) in counters.iter_mut().enumerate() {
            *c = counter.wrapping_add(l as u32);
        }
        initial[12] = Lanes(counters);
        let mut x = initial;
        for _ in 0..10 {
            // column rounds
            quarter_wide!(x, 0, 4, 8, 12);
            quarter_wide!(x, 1, 5, 9, 13);
            quarter_wide!(x, 2, 6, 10, 14);
            quarter_wide!(x, 3, 7, 11, 15);
            // diagonal rounds
            quarter_wide!(x, 0, 5, 10, 15);
            quarter_wide!(x, 1, 6, 11, 12);
            quarter_wide!(x, 2, 7, 8, 13);
            quarter_wide!(x, 3, 4, 9, 14);
        }
        let mut out = [[0u32; N]; 16];
        for ((row, init_row), out_row) in x.iter().zip(initial.iter()).zip(out.iter_mut()) {
            *out_row = row.add(*init_row).0;
        }
        out
    }

    /// XOR `N` keystream blocks (word-major) into a `64 * N`-byte group,
    /// reading and writing the data in `u64` lanes.
    #[inline(always)]
    fn xor_group<const N: usize>(group: &mut [u8], words: &[[u32; N]; 16]) {
        debug_assert_eq!(group.len(), 64 * N);
        for (l, chunk) in group.chunks_exact_mut(64).enumerate() {
            for (bytes, pair) in chunk.chunks_exact_mut(8).zip(words.chunks_exact(2)) {
                let ks = u64::from(pair[0][l]) | (u64::from(pair[1][l]) << 32);
                let data = u64::from_le_bytes(bytes.try_into().expect("8-byte lane"));
                bytes.copy_from_slice(&(data ^ ks).to_le_bytes());
            }
        }
    }

    /// Generate `N` blocks of keystream and XOR them into a `64 * N`-byte
    /// group, advancing the counter.
    #[inline(always)]
    fn apply_wide<const N: usize>(&mut self, group: &mut [u8]) {
        let words = self.wide_block_words::<N>(self.counter);
        self.counter = self.counter.wrapping_add(N as u32);
        Self::xor_group(group, &words);
    }

    /// The bulk path: two independent [`WIDE`]-lane states advanced through
    /// the rounds in lockstep. One [`WIDE`]-lane state is a serial chain of
    /// vector ops per quarter round; interleaving a second chain roughly
    /// doubles the instruction-level parallelism and keeps the vector
    /// pipelines full (measurably faster than one 2×[`WIDE`]-lane state,
    /// which overflows the register file).
    fn apply_wide_pair(&mut self, group: &mut [u8]) {
        debug_assert_eq!(group.len(), 64 * 2 * WIDE);
        let counter = self.counter;
        let template = self.init_state(counter);
        let mut ix = [Lanes::<WIDE>::splat(0); 16];
        for (row, word) in ix.iter_mut().zip(template.iter()) {
            *row = Lanes::splat(*word);
        }
        let mut iy = ix;
        let mut cx = [0u32; WIDE];
        let mut cy = [0u32; WIDE];
        for (l, c) in cx.iter_mut().enumerate() {
            *c = counter.wrapping_add(l as u32);
        }
        for (l, c) in cy.iter_mut().enumerate() {
            *c = counter.wrapping_add((WIDE + l) as u32);
        }
        ix[12] = Lanes(cx);
        iy[12] = Lanes(cy);
        let mut x = ix;
        let mut y = iy;
        macro_rules! quarter_pair {
            ($a:tt, $b:tt, $c:tt, $d:tt) => {
                quarter_wide!(x, $a, $b, $c, $d);
                quarter_wide!(y, $a, $b, $c, $d);
            };
        }
        for _ in 0..10 {
            // column rounds
            quarter_pair!(0, 4, 8, 12);
            quarter_pair!(1, 5, 9, 13);
            quarter_pair!(2, 6, 10, 14);
            quarter_pair!(3, 7, 11, 15);
            // diagonal rounds
            quarter_pair!(0, 5, 10, 15);
            quarter_pair!(1, 6, 11, 12);
            quarter_pair!(2, 7, 8, 13);
            quarter_pair!(3, 4, 9, 14);
        }
        let mut ox = [[0u32; WIDE]; 16];
        let mut oy = [[0u32; WIDE]; 16];
        for ((o, s), i) in ox.iter_mut().zip(x.iter()).zip(ix.iter()) {
            *o = s.add(*i).0;
        }
        for ((o, s), i) in oy.iter_mut().zip(y.iter()).zip(iy.iter()) {
            *o = s.add(*i).0;
        }
        self.counter = counter.wrapping_add(2 * WIDE as u32);
        let (gx, gy) = group.split_at_mut(64 * WIDE);
        Self::xor_group(gx, &ox);
        Self::xor_group(gy, &oy);
    }

    /// XOR one keystream block (as words) into a 64-byte chunk, eight
    /// `u64` lanes at a time. Two consecutive little-endian `u32` keystream
    /// words are one little-endian `u64`.
    #[inline(always)]
    fn xor_block(chunk: &mut [u8], words: &[u32; 16]) {
        debug_assert_eq!(chunk.len(), 64);
        for (pair, bytes) in words.chunks_exact(2).zip(chunk.chunks_exact_mut(8)) {
            let ks = u64::from(pair[0]) | (u64::from(pair[1]) << 32);
            let data = u64::from_le_bytes(bytes.try_into().expect("8-byte lane"));
            bytes.copy_from_slice(&(data ^ ks).to_le_bytes());
        }
    }

    /// Finish a sub-group-sized run (`0 < data.len() <= 64 * N`) with a
    /// single `N`-lane pass: whole blocks are XORed lane by lane, and a
    /// trailing partial block lands in the keystream buffer so the next
    /// call resumes mid-block — no scalar per-block passes at all. This is
    /// what keeps a 509-byte relay payload at one or two wide passes total.
    #[inline(always)]
    fn apply_tail<const N: usize>(&mut self, data: &mut [u8]) {
        debug_assert!(!data.is_empty() && data.len() <= 64 * N);
        let words = self.wide_block_words::<N>(self.counter);
        let mut blocks = data.chunks_exact_mut(64);
        let mut lane = 0;
        for chunk in &mut blocks {
            for (pair, bytes) in words.chunks_exact(2).zip(chunk.chunks_exact_mut(8)) {
                let ks = u64::from(pair[0][lane]) | (u64::from(pair[1][lane]) << 32);
                let d = u64::from_le_bytes(bytes.try_into().expect("8-byte lane"));
                bytes.copy_from_slice(&(d ^ ks).to_le_bytes());
            }
            lane += 1;
        }
        self.counter = self.counter.wrapping_add(lane as u32);
        let tail = blocks.into_remainder();
        if !tail.is_empty() {
            for (i, row) in words.iter().enumerate() {
                self.block[i * 4..i * 4 + 4].copy_from_slice(&row[lane].to_le_bytes());
            }
            self.counter = self.counter.wrapping_add(1);
            for (byte, ks) in tail.iter_mut().zip(self.block.iter()) {
                *byte ^= ks;
            }
            self.offset = tail.len();
        }
    }

    fn refill(&mut self) {
        let words = self.block_words(self.counter);
        for (i, word) in words.iter().enumerate() {
            self.block[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.offset = 0;
    }

    /// XOR the keystream into `data` in place, advancing the stream position.
    /// Encryption and decryption are the same operation.
    ///
    /// Fast path: after draining any buffered partial block, keystream is
    /// generated [`WIDE`] blocks per round-function pass ([`NARROW`] for a
    /// cell-sized remainder) and XORed in `u64` lanes; only a trailing
    /// partial block goes through the byte-at-a-time buffer.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut data = data;
        if self.offset < 64 {
            // Drain the buffered partial block from a previous call.
            let take = (64 - self.offset).min(data.len());
            for (byte, ks) in data[..take]
                .iter_mut()
                .zip(self.block[self.offset..self.offset + take].iter())
            {
                *byte ^= ks;
            }
            self.offset += take;
            data = &mut data[take..];
        }
        // Bulk path: two interleaved WIDE-lane passes per group.
        let mut pair = data.chunks_exact_mut(64 * 2 * WIDE);
        for group in &mut pair {
            self.apply_wide_pair(group);
        }
        data = pair.into_remainder();
        // One single-state wide pass for a half-group remainder.
        let mut wide = data.chunks_exact_mut(64 * WIDE);
        for group in &mut wide {
            self.apply_wide::<WIDE>(group);
        }
        data = wide.into_remainder();
        // Everything left fits in one wide or one narrow pass (plus a
        // buffered partial block); a lone whole block keeps the scalar path.
        if data.len() > 64 * NARROW {
            self.apply_tail::<WIDE>(data);
        } else if data.len() > 64 {
            self.apply_tail::<NARROW>(data);
        } else if data.len() == 64 {
            let words = self.block_words(self.counter);
            self.counter = self.counter.wrapping_add(1);
            Self::xor_block(data, &words);
        } else if !data.is_empty() {
            // Trailing partial block: buffer a fresh keystream block and
            // leave the unused part for the next call.
            self.refill();
            let tail = data;
            for (byte, ks) in tail.iter_mut().zip(self.block.iter()) {
                *byte ^= ks;
            }
            self.offset = tail.len();
        }
    }

    /// Convenience: XOR a copy of `data` and return it.
    pub fn apply_copy(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }

    /// Write `out.len()` bytes of raw keystream into `out`, advancing the
    /// stream position exactly as [`ChaCha20::apply`] would.
    ///
    /// Implemented as XOR-into-zeros: zeroing `out` and running the normal
    /// `apply` path produces the keystream itself while reusing every wide
    /// fast path and the buffered-partial-block continuity logic, so a
    /// prefetch consumer stays bit-compatible with direct `apply` calls at
    /// any interleaving.
    pub fn keystream_into(&mut self, out: &mut [u8]) {
        out.fill(0);
        self.apply(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.4.2: the "sunscreen" test vector (counter starts at 1).
    #[test]
    fn rfc8439_sunscreen() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut c = ChaCha20::new(&key, &nonce);
        c.seek(64); // counter = 1 per the RFC vector
        let ct = c.apply_copy(plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    /// RFC 8439 §2.3.2 keystream block check via zero plaintext.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce);
        c.seek(64); // counter = 1
        let ks = c.apply_copy(&[0u8; 64]);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// The RFC 8439 §2.4.2 vector fed through every path: one-shot, and in
    /// chunk patterns that cross the buffered-partial / whole-block
    /// boundaries mid-vector. All must produce the RFC ciphertext.
    #[test]
    fn rfc8439_sunscreen_across_chunk_boundaries() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let expected = "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d";
        for chunks in [
            vec![114usize],  // one shot
            vec![1, 63, 50], // partial, then exactly to the block edge
            vec![64, 50],    // whole block, then partial
            vec![63, 1, 50], // partial up to the edge, then cross it
            vec![65, 49],    // whole block plus one byte
            vec![7; 17],     // never aligned
        ] {
            let mut c = ChaCha20::new(&key, &nonce);
            c.seek(64); // counter = 1 per the RFC vector
            let mut ct = Vec::new();
            let mut rest = plaintext;
            for take in chunks.iter().copied() {
                let take = take.min(rest.len());
                ct.extend_from_slice(&c.apply_copy(&rest[..take]));
                rest = &rest[take..];
            }
            assert_eq!(hex(&ct), expected, "chunks {chunks:?}");
        }
    }

    #[test]
    fn roundtrip_decrypts() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..1000u16).map(|i| (i % 256) as u8).collect();
        let ct = ChaCha20::new(&key, &nonce).apply_copy(&msg);
        assert_ne!(ct, msg);
        let pt = ChaCha20::new(&key, &nonce).apply_copy(&ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn streaming_is_position_continuous() {
        // Applying in many small pieces equals one big application.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let msg = vec![0xABu8; 517];
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&msg);
        let mut c = ChaCha20::new(&key, &nonce);
        let mut pieced = Vec::new();
        for chunk in msg.chunks(13) {
            pieced.extend_from_slice(&c.apply_copy(chunk));
        }
        assert_eq!(pieced, whole);
    }

    #[test]
    fn seek_matches_sequential() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let msg = vec![0u8; 300];
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&msg);
        for pos in [0u64, 1, 63, 64, 65, 130, 299] {
            let mut c = ChaCha20::new(&key, &nonce);
            c.seek(pos);
            let tail = c.apply_copy(&msg[pos as usize..]);
            assert_eq!(&tail[..], &whole[pos as usize..], "seek to {pos}");
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [5u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).apply_copy(&[0u8; 64]);
        let b = ChaCha20::new(&key, &[1u8; 12]).apply_copy(&[0u8; 64]);
        assert_ne!(a, b);
    }

    /// `keystream_into` produces exactly the bytes `apply` would XOR, at any
    /// length, and stays position-continuous when interleaved with `apply`.
    #[test]
    fn keystream_into_matches_apply() {
        let key = [6u8; 32];
        let nonce = [7u8; 12];
        for len in [0usize, 1, 63, 64, 65, 509, 512, 1024, 4096 + 17] {
            let mut direct = ChaCha20::new(&key, &nonce);
            let expected = direct.apply_copy(&vec![0u8; len]);
            let mut ks = vec![0xFFu8; len];
            ChaCha20::new(&key, &nonce).keystream_into(&mut ks);
            assert_eq!(ks, expected, "len {len}");
        }
        // Interleave: apply 100 bytes, fetch 200 bytes of keystream, apply
        // 50 more — must equal one sequential 350-byte application.
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&vec![0u8; 350]);
        let mut c = ChaCha20::new(&key, &nonce);
        let mut got = Vec::new();
        got.extend_from_slice(&c.apply_copy(&[0u8; 100]));
        let mut mid = [0u8; 200];
        c.keystream_into(&mut mid);
        got.extend_from_slice(&mid);
        got.extend_from_slice(&c.apply_copy(&[0u8; 50]));
        assert_eq!(got, whole);
    }
}
