//! The ChaCha20 stream cipher (RFC 8439), used for onion layer encryption
//! and the FS Protect filesystem.
//!
//! The cipher exposes both a one-shot XOR ([`ChaCha20::apply`]) and a
//! seekable keystream ([`ChaCha20::seek`]); Tor-style relay crypto applies
//! each hop's cipher as a continuous stream across cells, which the
//! position tracking here supports directly.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// A ChaCha20 cipher instance: key + nonce + stream position.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    /// Next block counter.
    counter: u32,
    /// Buffered keystream of the current block.
    block: [u8; 64],
    /// Offset into `block` of the next unused keystream byte (64 = exhausted).
    offset: usize,
}

impl ChaCha20 {
    /// Create a cipher with block counter starting at 0.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, item) in k.iter_mut().enumerate() {
            *item = u32::from_le_bytes([
                key[i * 4],
                key[i * 4 + 1],
                key[i * 4 + 2],
                key[i * 4 + 3],
            ]);
        }
        let mut n = [0u32; 3];
        for (i, item) in n.iter_mut().enumerate() {
            *item = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter: 0,
            block: [0; 64],
            offset: 64,
        }
    }

    /// Reposition the keystream to absolute byte `pos`.
    pub fn seek(&mut self, pos: u64) {
        self.counter = (pos / 64) as u32;
        let within = (pos % 64) as usize;
        if within == 0 {
            self.offset = 64;
        } else {
            self.refill();
            // refill() advanced counter; it generated the block for the
            // pre-increment counter, which is what we want.
            self.offset = within;
        }
    }

    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            // column rounds
            Self::quarter(&mut state, 0, 4, 8, 12);
            Self::quarter(&mut state, 1, 5, 9, 13);
            Self::quarter(&mut state, 2, 6, 10, 14);
            Self::quarter(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter(&mut state, 0, 5, 10, 15);
            Self::quarter(&mut state, 1, 6, 11, 12);
            Self::quarter(&mut state, 2, 7, 8, 13);
            Self::quarter(&mut state, 3, 4, 9, 14);
        }
        for (i, word) in state.iter_mut().enumerate() {
            *word = word.wrapping_add(initial[i]);
            self.block[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.offset = 0;
    }

    /// XOR the keystream into `data` in place, advancing the stream position.
    /// Encryption and decryption are the same operation.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.offset == 64 {
                self.refill();
            }
            *byte ^= self.block[self.offset];
            self.offset += 1;
        }
    }

    /// Convenience: XOR a copy of `data` and return it.
    pub fn apply_copy(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.4.2: the "sunscreen" test vector (counter starts at 1).
    #[test]
    fn rfc8439_sunscreen() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut c = ChaCha20::new(&key, &nonce);
        c.seek(64); // counter = 1 per the RFC vector
        let ct = c.apply_copy(plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
    }

    /// RFC 8439 §2.3.2 keystream block check via zero plaintext.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&key, &nonce);
        c.seek(64); // counter = 1
        let ks = c.apply_copy(&[0u8; 64]);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn roundtrip_decrypts() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..1000u16).map(|i| (i % 256) as u8).collect();
        let ct = ChaCha20::new(&key, &nonce).apply_copy(&msg);
        assert_ne!(ct, msg);
        let pt = ChaCha20::new(&key, &nonce).apply_copy(&ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn streaming_is_position_continuous() {
        // Applying in many small pieces equals one big application.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let msg = vec![0xABu8; 517];
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&msg);
        let mut c = ChaCha20::new(&key, &nonce);
        let mut pieced = Vec::new();
        for chunk in msg.chunks(13) {
            pieced.extend_from_slice(&c.apply_copy(chunk));
        }
        assert_eq!(pieced, whole);
    }

    #[test]
    fn seek_matches_sequential() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let msg = vec![0u8; 300];
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&msg);
        for pos in [0u64, 1, 63, 64, 65, 130, 299] {
            let mut c = ChaCha20::new(&key, &nonce);
            c.seek(pos);
            let tail = c.apply_copy(&msg[pos as usize..]);
            assert_eq!(&tail[..], &whole[pos as usize..], "seek to {pos}");
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [5u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).apply_copy(&[0u8; 64]);
        let b = ChaCha20::new(&key, &[1u8; 12]).apply_copy(&[0u8; 64]);
        assert_ne!(a, b);
    }
}
