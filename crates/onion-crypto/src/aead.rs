//! Authenticated encryption: ChaCha20 + HMAC-SHA256 encrypt-then-MAC.
//!
//! Used wherever the reproduction needs confidentiality *and* integrity in
//! one shot: FS Protect file blocks, sealed enclave storage, and the
//! attested channel a Bento client uploads its function over.

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::hmac::{ct_eq, hkdf, hmac_sha256_parts};

/// Tag length in bytes (full HMAC-SHA256 output).
pub const TAG_LEN: usize = 32;

/// AEAD failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// Ciphertext shorter than a tag.
    TooShort,
    /// Authentication tag mismatch: tampered or wrong key/nonce/aad.
    BadTag,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::TooShort => write!(f, "ciphertext too short"),
            AeadError::BadTag => write!(f, "authentication failed"),
        }
    }
}

impl std::error::Error for AeadError {}

/// An AEAD key; internally split into independent cipher and MAC keys.
#[derive(Clone)]
pub struct AeadKey {
    enc: [u8; 32],
    mac: [u8; 32],
}

impl AeadKey {
    /// Derive the cipher/MAC key pair from one 32-byte master key.
    pub fn from_master(master: &[u8; 32]) -> Self {
        let okm = hkdf(b"bento-aead", master, b"enc|mac", 64);
        let mut enc = [0u8; 32];
        let mut mac = [0u8; 32];
        enc.copy_from_slice(&okm[..32]);
        mac.copy_from_slice(&okm[32..]);
        AeadKey { enc, mac }
    }

    /// Generate a random key.
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        let mut master = [0u8; 32];
        rng.fill(&mut master);
        AeadKey::from_master(&master)
    }
}

/// The MAC covers `nonce || len(aad) || aad || len(ct) || ct`, streamed
/// into HMAC as parts — the encoding is never materialized.
fn compute_tag(key: &AeadKey, nonce: &[u8; NONCE_LEN], aad: &[u8], ct: &[u8]) -> [u8; TAG_LEN] {
    hmac_sha256_parts(
        &key.mac,
        &[
            nonce,
            &(aad.len() as u64).to_be_bytes(),
            aad,
            &(ct.len() as u64).to_be_bytes(),
            ct,
        ],
    )
}

/// Encrypt and authenticate in place: `buf` (the plaintext) becomes
/// `ciphertext || tag`, growing by [`TAG_LEN`]. No scratch allocation
/// beyond the tag append.
pub fn seal_in_place(key: &AeadKey, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>) {
    ChaCha20::new(&key.enc, nonce).apply(buf);
    let tag = compute_tag(key, nonce, aad, buf);
    buf.extend_from_slice(&tag);
}

/// Verify and decrypt in place: `buf` (`ciphertext || tag`) becomes the
/// plaintext, shrinking by [`TAG_LEN`]. On error `buf` is left unmodified.
pub fn open_in_place(
    key: &AeadKey,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut Vec<u8>,
) -> Result<(), AeadError> {
    if buf.len() < TAG_LEN {
        return Err(AeadError::TooShort);
    }
    let split = buf.len() - TAG_LEN;
    let (ct, tag) = buf.split_at(split);
    let expect = compute_tag(key, nonce, aad, ct);
    if !ct_eq(&expect, tag) {
        return Err(AeadError::BadTag);
    }
    buf.truncate(split);
    ChaCha20::new(&key.enc, nonce).apply(buf);
    Ok(())
}

/// Encrypt and authenticate: returns `ciphertext || tag`.
pub fn seal(key: &AeadKey, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(plaintext.len() + TAG_LEN);
    buf.extend_from_slice(plaintext);
    seal_in_place(key, nonce, aad, &mut buf);
    buf
}

/// Verify and decrypt `ciphertext || tag`.
pub fn open(
    key: &AeadKey,
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AeadError> {
    let mut buf = sealed.to_vec();
    open_in_place(key, nonce, aad, &mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn key() -> AeadKey {
        AeadKey::from_master(&[42u8; 32])
    }

    #[test]
    fn seal_open_roundtrip() {
        let k = key();
        let nonce = [1u8; 12];
        let sealed = seal(&k, &nonce, b"header", b"secret payload");
        assert_eq!(sealed.len(), 14 + TAG_LEN);
        let opened = open(&k, &nonce, b"header", &sealed).unwrap();
        assert_eq!(opened, b"secret payload");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key();
        let nonce = [1u8; 12];
        let mut sealed = seal(&k, &nonce, b"", b"data");
        sealed[0] ^= 1;
        assert_eq!(open(&k, &nonce, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn tampered_tag_rejected() {
        let k = key();
        let nonce = [1u8; 12];
        let mut sealed = seal(&k, &nonce, b"", b"data");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(open(&k, &nonce, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let k = key();
        let nonce = [1u8; 12];
        let sealed = seal(&k, &nonce, b"aad-1", b"data");
        assert_eq!(open(&k, &nonce, b"aad-2", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let k = key();
        let sealed = seal(&k, &[1u8; 12], b"", b"data");
        assert_eq!(open(&k, &[2u8; 12], b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(), &[1u8; 12], b"", b"data");
        let other = AeadKey::from_master(&[43u8; 32]);
        assert_eq!(
            open(&other, &[1u8; 12], b"", &sealed),
            Err(AeadError::BadTag)
        );
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(
            open(&key(), &[0u8; 12], b"", &[0u8; 31]),
            Err(AeadError::TooShort)
        );
    }

    #[test]
    fn empty_plaintext_works() {
        let k = key();
        let sealed = seal(&k, &[9u8; 12], b"only aad", b"");
        assert_eq!(open(&k, &[9u8; 12], b"only aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn aad_length_confusion_rejected() {
        // Moving a byte between aad and plaintext must change the tag.
        let k = key();
        let nonce = [0u8; 12];
        let a = seal(&k, &nonce, b"ab", b"c");
        let b = seal(&k, &nonce, b"a", b"bc");
        // Different ciphertext lengths make direct comparison moot, but both
        // decode only under their own aad split.
        assert!(open(&k, &nonce, b"a", &a).is_err());
        assert!(open(&k, &nonce, b"ab", &b).is_err());
    }

    #[test]
    fn random_keys_differ() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let k1 = AeadKey::random(&mut rng);
        let k2 = AeadKey::random(&mut rng);
        let s1 = seal(&k1, &[0; 12], b"", b"x");
        let s2 = seal(&k2, &[0; 12], b"", b"x");
        assert_ne!(s1, s2);
    }
}
