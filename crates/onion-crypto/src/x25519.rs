//! X25519 Diffie–Hellman (RFC 7748): the Montgomery ladder on Curve25519
//! over GF(2^255 − 19), with field arithmetic in radix-2^51.
//!
//! This is the primitive under Tor's ntor handshake: a relay's identity and
//! onion keys are X25519 keys, and circuit extension is two DH operations.
//! Verified against the RFC 7748 test vectors.

/// A field element mod 2^255 − 19, five 51-bit limbs, little-endian.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

const MASK51: u64 = (1 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = 0u64;
            for j in 0..8 {
                v |= (b[i + j] as u64) << (8 * j);
            }
            v
        };
        // 255 bits packed in 32 bytes; top bit masked per RFC 7748.
        let l0 = load(0) & MASK51;
        let l1 = (load(6) >> 3) & MASK51;
        let l2 = (load(12) >> 6) & MASK51;
        let l3 = (load(19) >> 1) & MASK51;
        let l4 = (load(24) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    fn to_bytes(mut self) -> [u8; 32] {
        self = self.carry();
        // Conditionally subtract p (twice covers any residual excess).
        for _ in 0..2 {
            self = self.reduce_once();
        }
        let Fe(limbs) = self;
        let mut out = [0u8; 32];
        let mut bitpos = 0usize;
        for &limb in &limbs {
            for b in 0..51 {
                if (limb >> b) & 1 == 1 {
                    out[(bitpos + b) / 8] |= 1 << ((bitpos + b) % 8);
                }
            }
            bitpos += 51;
        }
        out
    }

    /// Subtract p if the value is ≥ p (single pass).
    fn reduce_once(self) -> Fe {
        let Fe(l) = self;
        // Compute l - p with borrow tracking.
        let mut t = [0i128; 5];
        t[0] = l[0] as i128 - ((1u64 << 51) - 19) as i128;
        t[1] = l[1] as i128 - MASK51 as i128;
        t[2] = l[2] as i128 - MASK51 as i128;
        t[3] = l[3] as i128 - MASK51 as i128;
        t[4] = l[4] as i128 - MASK51 as i128;
        for i in 0..4 {
            if t[i] < 0 {
                t[i] += 1 << 51;
                t[i + 1] -= 1;
            }
        }
        if t[4] < 0 {
            // value < p: keep original
            self
        } else {
            Fe([
                t[0] as u64,
                t[1] as u64,
                t[2] as u64,
                t[3] as u64,
                t[4] as u64,
            ])
        }
    }

    fn add(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + b[0],
            a[1] + b[1],
            a[2] + b[2],
            a[3] + b[3],
            a[4] + b[4],
        ])
        .carry()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // a + 2p - b, limbwise; 2p = (2^52-38, 2^52-2, ...).
        let a = self.0;
        let b = rhs.0;
        Fe([
            a[0] + 0xFFFFFFFFFFFDA - b[0],
            a[1] + 0xFFFFFFFFFFFFE - b[1],
            a[2] + 0xFFFFFFFFFFFFE - b[2],
            a[3] + 0xFFFFFFFFFFFFE - b[3],
            a[4] + 0xFFFFFFFFFFFFE - b[4],
        ])
        .carry()
    }

    fn carry(self) -> Fe {
        let mut l = self.0;
        let mut c: u64;
        for _ in 0..2 {
            c = l[0] >> 51;
            l[0] &= MASK51;
            l[1] += c;
            c = l[1] >> 51;
            l[1] &= MASK51;
            l[2] += c;
            c = l[2] >> 51;
            l[2] &= MASK51;
            l[3] += c;
            c = l[3] >> 51;
            l[3] &= MASK51;
            l[4] += c;
            c = l[4] >> 51;
            l[4] &= MASK51;
            l[0] += c * 19;
        }
        Fe(l)
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        let mut r0 =
            m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        // Carry chain in u128.
        let mut c: u128;
        c = r0 >> 51;
        r0 &= MASK51 as u128;
        r1 += c;
        c = r1 >> 51;
        r1 &= MASK51 as u128;
        r2 += c;
        c = r2 >> 51;
        r2 &= MASK51 as u128;
        r3 += c;
        c = r3 >> 51;
        r3 &= MASK51 as u128;
        r4 += c;
        c = r4 >> 51;
        r4 &= MASK51 as u128;
        r0 += c * 19;
        Fe([r0 as u64, r1 as u64, r2 as u64, r3 as u64, r4 as u64]).carry()
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    /// `self^(2^k)` by repeated squaring.
    fn pow2k(self, k: u32) -> Fe {
        let mut t = self;
        for _ in 0..k {
            t = t.square();
        }
        t
    }

    fn mul_small(self, n: u64) -> Fe {
        let a = self.0;
        let m = |x: u64| x as u128 * n as u128;
        let mut r = [m(a[0]), m(a[1]), m(a[2]), m(a[3]), m(a[4])];
        let mut c: u128;
        for i in 0..4 {
            c = r[i] >> 51;
            r[i] &= MASK51 as u128;
            r[i + 1] += c;
        }
        c = r[4] >> 51;
        r[4] &= MASK51 as u128;
        r[0] += c * 19;
        Fe([
            r[0] as u64,
            r[1] as u64,
            r[2] as u64,
            r[3] as u64,
            r[4] as u64,
        ])
        .carry()
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)` with the ref10 chain.
    fn invert(self) -> Fe {
        let z = self;
        let z2 = z.square(); // 2
        let z8 = z2.pow2k(2); // 8
        let z9 = z8.mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z22 = z11.square(); // 22
        let z_5_0 = z22.mul(z9); // 2^5 - 1
        let z_10_0 = z_5_0.pow2k(5).mul(z_5_0); // 2^10 - 1
        let z_20_0 = z_10_0.pow2k(10).mul(z_10_0); // 2^20 - 1
        let z_40_0 = z_20_0.pow2k(20).mul(z_20_0); // 2^40 - 1
        let z_50_0 = z_40_0.pow2k(10).mul(z_10_0); // 2^50 - 1
        let z_100_0 = z_50_0.pow2k(50).mul(z_50_0); // 2^100 - 1
        let z_200_0 = z_100_0.pow2k(100).mul(z_100_0); // 2^200 - 1
        let z_250_0 = z_200_0.pow2k(50).mul(z_50_0); // 2^250 - 1
        z_250_0.pow2k(5).mul(z11) // 2^255 - 21
    }
}

/// Clamp a 32-byte scalar per RFC 7748.
fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// X25519 scalar multiplication: `scalar * u_point`.
pub fn x25519(scalar: [u8; 32], u_point: [u8; 32]) -> [u8; 32] {
    let k = clamp(scalar);
    let x1 = Fe::from_bytes(&u_point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = false;
    for t in (0..255).rev() {
        let bit = (k[t / 8] >> (t % 8)) & 1 == 1;
        if swap != bit {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = bit;
        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    if swap {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(z2.invert()).to_bytes()
}

/// X25519 with the standard base point (u = 9): derive a public key.
pub fn x25519_base(scalar: [u8; 32]) -> [u8; 32] {
    let mut base = [0u8; 32];
    base[0] = 9;
    x25519(scalar, base)
}

/// A long-term X25519 secret key.
#[derive(Clone)]
pub struct StaticSecret([u8; 32]);

/// An X25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PublicKey(pub [u8; 32]);

impl StaticSecret {
    /// Create from raw bytes (clamped on use).
    pub fn from_bytes(b: [u8; 32]) -> Self {
        StaticSecret(b)
    }

    /// Generate from an RNG.
    pub fn random(rng: &mut impl rand::Rng) -> Self {
        let mut b = [0u8; 32];
        rng.fill(&mut b);
        StaticSecret(b)
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(x25519_base(self.0))
    }

    /// Diffie–Hellman with a peer's public key.
    pub fn diffie_hellman(&self, peer: &PublicKey) -> [u8; 32] {
        x25519(self.0, peer.0)
    }
}

impl PublicKey {
    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    /// RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let k = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(k, u);
        assert_eq!(
            out,
            unhex("c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")
        );
    }

    /// RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector2() {
        let k = unhex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(k, u);
        assert_eq!(
            out,
            unhex("95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")
        );
    }

    /// RFC 7748 §6.1 Diffie–Hellman test.
    #[test]
    fn rfc7748_dh() {
        let a_priv = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let b_priv = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let a_pub = x25519_base(a_priv);
        let b_pub = x25519_base(b_priv);
        assert_eq!(
            a_pub,
            unhex("8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        );
        assert_eq!(
            b_pub,
            unhex("de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        );
        let shared_a = x25519(a_priv, b_pub);
        let shared_b = x25519(b_priv, a_pub);
        let expected = unhex("4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
        assert_eq!(shared_a, expected);
        assert_eq!(shared_b, expected);
    }

    /// RFC 7748 §5.2 iterated test, 1 iteration (k = u = base).
    #[test]
    fn rfc7748_iterated_once() {
        let mut k = [0u8; 32];
        k[0] = 9;
        let u = k;
        let out = x25519(k, u);
        assert_eq!(
            out,
            unhex("422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079")
        );
    }

    /// RFC 7748 §5.2 iterated test, 1000 iterations (slow but important).
    #[test]
    fn rfc7748_iterated_1000() {
        let mut k = [0u8; 32];
        k[0] = 9;
        let mut u = k;
        for _ in 0..1000 {
            let out = x25519(k, u);
            u = k;
            k = out;
        }
        assert_eq!(
            k,
            unhex("684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51")
        );
    }

    #[test]
    fn static_secret_dh_agrees() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = StaticSecret::random(&mut rng);
        let b = StaticSecret::random(&mut rng);
        let s1 = a.diffie_hellman(&b.public_key());
        let s2 = b.diffie_hellman(&a.public_key());
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
    }
}
