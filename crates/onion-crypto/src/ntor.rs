//! An ntor-style authenticated circuit handshake (after Tor's ntor,
//! Goldberg–Stebila–Ustaoglu).
//!
//! The client knows the relay's identity fingerprint and long-term onion
//! (X25519) public key from the directory. One round trip establishes
//! forward/backward keys with server authentication:
//!
//! ```text
//! client: x, X = xG            -->  node_id, B, X          (the "onionskin")
//! server: y, Y = yG            <--  Y, AUTH
//! secret_input = X·y (=Y·x) || X·b (=B·x) || ID || B || X || Y || PROTOID
//! AUTH = HMAC(t_mac, verify || ID || B || Y || X || PROTOID || "Server")
//! keys = HKDF(secret_input)
//! ```
//!
//! Only a party holding the relay's private identity key can compute `AUTH`,
//! so a man in the middle who substitutes its own `Y` is detected by the
//! client (exercised in the tests).

use crate::hmac::{ct_eq, hkdf, hmac_sha256};
use crate::x25519::{PublicKey, StaticSecret};

const PROTOID: &[u8] = b"bento-ntor-curve25519-sha256-1";

// Handshakes are per-circuit (cold path); counted inline.
static T_CLIENT_BEGIN: telemetry::Counter = telemetry::Counter::new("ntor.client_begin");
static T_SERVER_RESPOND: telemetry::Counter = telemetry::Counter::new("ntor.server_respond");
static T_CLIENT_FINISH: telemetry::Counter = telemetry::Counter::new("ntor.client_finish");
static T_FAILURES: telemetry::Counter = telemetry::Counter::new("ntor.failures");

/// Relay identity fingerprint (hash of its identity keys, assigned by the
/// directory).
pub type NodeId = [u8; 20];

/// Handshake failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NtorError {
    /// The onionskin or reply was structurally malformed.
    Malformed,
    /// The server's AUTH tag did not verify: wrong relay or active attack.
    AuthFailed,
}

impl std::fmt::Display for NtorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NtorError::Malformed => write!(f, "malformed ntor message"),
            NtorError::AuthFailed => write!(f, "ntor server authentication failed"),
        }
    }
}

impl std::error::Error for NtorError {}

/// The symmetric key material a completed handshake yields: independent
/// cipher keys, digest seeds, and nonces for each direction.
#[derive(Clone)]
#[cfg_attr(test, derive(Debug, PartialEq, Eq))]
pub struct CircuitKeys {
    /// Forward (client→relay) cipher key.
    pub kf: [u8; 32],
    /// Backward (relay→client) cipher key.
    pub kb: [u8; 32],
    /// Forward running-digest seed.
    pub df: [u8; 32],
    /// Backward running-digest seed.
    pub db: [u8; 32],
    /// Forward cipher nonce.
    pub nf: [u8; 12],
    /// Backward cipher nonce.
    pub nb: [u8; 12],
}

impl CircuitKeys {
    fn from_okm(okm: &[u8]) -> CircuitKeys {
        let mut kf = [0u8; 32];
        let mut kb = [0u8; 32];
        let mut df = [0u8; 32];
        let mut db = [0u8; 32];
        let mut nf = [0u8; 12];
        let mut nb = [0u8; 12];
        kf.copy_from_slice(&okm[0..32]);
        kb.copy_from_slice(&okm[32..64]);
        df.copy_from_slice(&okm[64..96]);
        db.copy_from_slice(&okm[96..128]);
        nf.copy_from_slice(&okm[128..140]);
        nb.copy_from_slice(&okm[140..152]);
        CircuitKeys {
            kf,
            kb,
            df,
            db,
            nf,
            nb,
        }
    }
}

/// Client-side state held between [`client_begin`] and [`client_finish`].
pub struct ClientHandshake {
    node_id: NodeId,
    relay_onion_key: PublicKey,
    eph: StaticSecret,
    eph_pub: PublicKey,
}

/// Size of the onionskin the client sends.
pub const ONIONSKIN_LEN: usize = 20 + 32 + 32;
/// Size of the server's reply.
pub const REPLY_LEN: usize = 32 + 32;

/// Begin a handshake toward a relay with the given identity and onion key.
/// Returns the state to keep and the onionskin to send.
pub fn client_begin(
    rng: &mut impl rand::Rng,
    node_id: NodeId,
    relay_onion_key: PublicKey,
) -> (ClientHandshake, Vec<u8>) {
    T_CLIENT_BEGIN.inc();
    let eph = StaticSecret::random(rng);
    let eph_pub = eph.public_key();
    let mut onionskin = Vec::with_capacity(ONIONSKIN_LEN);
    onionskin.extend_from_slice(&node_id);
    onionskin.extend_from_slice(relay_onion_key.as_bytes());
    onionskin.extend_from_slice(eph_pub.as_bytes());
    (
        ClientHandshake {
            node_id,
            relay_onion_key,
            eph,
            eph_pub,
        },
        onionskin,
    )
}

fn secret_input(
    xy: &[u8; 32],
    xb: &[u8; 32],
    node_id: &NodeId,
    b: &PublicKey,
    x: &PublicKey,
    y: &PublicKey,
) -> Vec<u8> {
    let mut s = Vec::with_capacity(32 * 4 + 20 + PROTOID.len());
    s.extend_from_slice(xy);
    s.extend_from_slice(xb);
    s.extend_from_slice(node_id);
    s.extend_from_slice(b.as_bytes());
    s.extend_from_slice(x.as_bytes());
    s.extend_from_slice(y.as_bytes());
    s.extend_from_slice(PROTOID);
    s
}

fn auth_tag(
    secret: &[u8],
    node_id: &NodeId,
    b: &PublicKey,
    y: &PublicKey,
    x: &PublicKey,
) -> [u8; 32] {
    let verify = hmac_sha256(secret, b"ntor-verify");
    let mut auth_input = Vec::new();
    auth_input.extend_from_slice(&verify);
    auth_input.extend_from_slice(node_id);
    auth_input.extend_from_slice(b.as_bytes());
    auth_input.extend_from_slice(y.as_bytes());
    auth_input.extend_from_slice(x.as_bytes());
    auth_input.extend_from_slice(PROTOID);
    auth_input.extend_from_slice(b"Server");
    hmac_sha256(b"ntor-mac", &auth_input)
}

fn derive_keys(secret: &[u8]) -> CircuitKeys {
    let okm = hkdf(b"ntor-key-extract", secret, b"ntor-key-expand", 152);
    CircuitKeys::from_okm(&okm)
}

/// Server side: process an onionskin, produce the reply and circuit keys.
///
/// `identity` is the relay's long-term onion secret whose public half the
/// directory advertises.
pub fn server_respond(
    rng: &mut impl rand::Rng,
    node_id: NodeId,
    identity: &StaticSecret,
    onionskin: &[u8],
) -> Result<(Vec<u8>, CircuitKeys), NtorError> {
    T_SERVER_RESPOND.inc();
    if onionskin.len() != ONIONSKIN_LEN {
        T_FAILURES.inc();
        return Err(NtorError::Malformed);
    }
    let mut claimed_id = [0u8; 20];
    claimed_id.copy_from_slice(&onionskin[..20]);
    let mut b_bytes = [0u8; 32];
    b_bytes.copy_from_slice(&onionskin[20..52]);
    let mut x_bytes = [0u8; 32];
    x_bytes.copy_from_slice(&onionskin[52..84]);
    let b_pub = identity.public_key();
    if claimed_id != node_id || b_bytes != *b_pub.as_bytes() {
        // The client was aiming at a different relay or stale keys.
        T_FAILURES.inc();
        return Err(NtorError::AuthFailed);
    }
    let x = PublicKey(x_bytes);
    let eph = StaticSecret::random(rng);
    let y = eph.public_key();
    let xy = eph.diffie_hellman(&x);
    let xb = identity.diffie_hellman(&x);
    let secret = secret_input(&xy, &xb, &node_id, &b_pub, &x, &y);
    let auth = auth_tag(&secret, &node_id, &b_pub, &y, &x);
    let mut reply = Vec::with_capacity(REPLY_LEN);
    reply.extend_from_slice(y.as_bytes());
    reply.extend_from_slice(&auth);
    Ok((reply, derive_keys(&secret)))
}

/// Client side: verify the server's reply and derive circuit keys.
pub fn client_finish(state: &ClientHandshake, reply: &[u8]) -> Result<CircuitKeys, NtorError> {
    T_CLIENT_FINISH.inc();
    if reply.len() != REPLY_LEN {
        T_FAILURES.inc();
        return Err(NtorError::Malformed);
    }
    let mut y_bytes = [0u8; 32];
    y_bytes.copy_from_slice(&reply[..32]);
    let y = PublicKey(y_bytes);
    let xy = state.eph.diffie_hellman(&y);
    let xb = state.eph.diffie_hellman(&state.relay_onion_key);
    let secret = secret_input(
        &xy,
        &xb,
        &state.node_id,
        &state.relay_onion_key,
        &state.eph_pub,
        &y,
    );
    let expect = auth_tag(
        &secret,
        &state.node_id,
        &state.relay_onion_key,
        &y,
        &state.eph_pub,
    );
    if !ct_eq(&expect, &reply[32..]) {
        T_FAILURES.inc();
        return Err(NtorError::AuthFailed);
    }
    Ok(derive_keys(&secret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, NodeId, StaticSecret) {
        let mut rng = StdRng::seed_from_u64(99);
        let identity = StaticSecret::random(&mut rng);
        (rng, [5u8; 20], identity)
    }

    #[test]
    fn handshake_derives_matching_keys() {
        let (mut rng, node_id, identity) = setup();
        let (state, onionskin) = client_begin(&mut rng, node_id, identity.public_key());
        let (reply, server_keys) =
            server_respond(&mut rng, node_id, &identity, &onionskin).unwrap();
        let client_keys = client_finish(&state, &reply).unwrap();
        assert_eq!(client_keys.kf, server_keys.kf);
        assert_eq!(client_keys.kb, server_keys.kb);
        assert_eq!(client_keys.df, server_keys.df);
        assert_eq!(client_keys.db, server_keys.db);
        assert_eq!(client_keys.nf, server_keys.nf);
        assert_eq!(client_keys.nb, server_keys.nb);
        assert_ne!(client_keys.kf, client_keys.kb);
    }

    #[test]
    fn mitm_substituting_y_is_detected() {
        let (mut rng, node_id, identity) = setup();
        let (state, onionskin) = client_begin(&mut rng, node_id, identity.public_key());
        let (mut reply, _) = server_respond(&mut rng, node_id, &identity, &onionskin).unwrap();
        // Attacker replaces Y with its own ephemeral key.
        let mallory = StaticSecret::random(&mut rng);
        reply[..32].copy_from_slice(mallory.public_key().as_bytes());
        assert!(matches!(
            client_finish(&state, &reply),
            Err(NtorError::AuthFailed)
        ));
    }

    #[test]
    fn wrong_identity_key_is_detected() {
        let (mut rng, node_id, identity) = setup();
        let imposter = StaticSecret::random(&mut rng);
        // Client aims at the honest relay's advertised key, but an imposter
        // without the private key answers: the onionskin names a key the
        // imposter does not hold, so it cannot accept it.
        let (_state, onionskin) = client_begin(&mut rng, node_id, identity.public_key());
        match server_respond(&mut rng, node_id, &imposter, &onionskin) {
            Err(NtorError::AuthFailed) => {}
            other => panic!("expected AuthFailed, got {:?}", other.map(|(r, _)| r)),
        }
    }

    #[test]
    fn malformed_messages_rejected() {
        let (mut rng, node_id, identity) = setup();
        assert!(matches!(
            server_respond(&mut rng, node_id, &identity, b"short"),
            Err(NtorError::Malformed)
        ));
        let (state, _skin) = client_begin(&mut rng, node_id, identity.public_key());
        assert!(matches!(
            client_finish(&state, b"short"),
            Err(NtorError::Malformed)
        ));
    }

    #[test]
    fn distinct_handshakes_yield_distinct_keys() {
        let (mut rng, node_id, identity) = setup();
        let run = |rng: &mut StdRng| {
            let (state, skin) = client_begin(rng, node_id, identity.public_key());
            let (reply, _) = server_respond(rng, node_id, &identity, &skin).unwrap();
            client_finish(&state, &reply).unwrap()
        };
        let k1 = run(&mut rng);
        let k2 = run(&mut rng);
        assert_ne!(k1.kf, k2.kf);
    }

    #[test]
    fn corrupted_auth_rejected() {
        let (mut rng, node_id, identity) = setup();
        let (state, onionskin) = client_begin(&mut rng, node_id, identity.public_key());
        let (mut reply, _) = server_respond(&mut rng, node_id, &identity, &onionskin).unwrap();
        reply[40] ^= 1;
        assert!(matches!(
            client_finish(&state, &reply),
            Err(NtorError::AuthFailed)
        ));
    }
}
