//! # onion-crypto — from-scratch primitives for the Bento reproduction
//!
//! Everything Tor-shaped in this workspace rests on a handful of primitives,
//! all implemented here with no external dependencies so the repository is
//! self-contained and auditable:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — HMAC-SHA256 and HKDF (RFC 5869).
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439), used for onion
//!   layer encryption and FS Protect.
//! * [`x25519`] — Curve25519 Diffie–Hellman (RFC 7748) via the Montgomery
//!   ladder over GF(2^255 − 19); the basis of the ntor circuit handshake.
//! * [`hashsig`] — Winternitz one-time signatures under a Merkle tree
//!   (an XMSS-style few-time scheme), used for directory and descriptor
//!   signatures; hash-based so it needs nothing beyond SHA-256.
//! * [`aead`] — encrypt-then-MAC authenticated encryption from ChaCha20 +
//!   HMAC-SHA256.
//! * [`ntor`] — the ntor-style authenticated circuit handshake.
//!
//! These are *real* implementations — the test vectors in each module come
//! from the relevant RFCs — but this crate has not been audited or hardened
//! against side channels; it exists to make the reproduction's code paths
//! genuine, not to protect production traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod hashsig;
pub mod hmac;
pub mod ntor;
pub mod sha256;
pub mod x25519;

pub use aead::{open, seal, AeadError, AeadKey};
pub use chacha20::ChaCha20;
pub use hashsig::{MerkleSigner, MerkleVerifyKey, Signature};
pub use hmac::{hkdf, hmac_sha256};
pub use ntor::{client_begin, client_finish, server_respond, CircuitKeys, NtorError};
pub use sha256::sha256 as sha256_digest;
pub use sha256::Sha256;
pub use x25519::x25519 as x25519_mul;
pub use x25519::{x25519_base, PublicKey, StaticSecret};
