//! Property-based tests of the crypto substrate.

use onion_crypto::aead::{open, open_in_place, seal, seal_in_place, AeadKey, TAG_LEN};
use onion_crypto::chacha20::ChaCha20;
use onion_crypto::hashsig::{MerkleSigner, Signature};
use onion_crypto::sha256::{sha256, Sha256};
use proptest::prelude::*;

proptest! {
    /// Incremental hashing equals one-shot for any split.
    #[test]
    fn sha256_incremental(data in proptest::collection::vec(any::<u8>(), 0..4096),
                          split in 0usize..4096) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// ChaCha20 is an involution under the same key/nonce and position.
    #[test]
    fn chacha_roundtrip(key in proptest::array::uniform32(any::<u8>()),
                        nonce in proptest::array::uniform12(any::<u8>()),
                        data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let ct = ChaCha20::new(&key, &nonce).apply_copy(&data);
        let pt = ChaCha20::new(&key, &nonce).apply_copy(&ct);
        prop_assert_eq!(pt, data);
    }

    /// Streaming in arbitrary chunk sizes equals one-shot encryption.
    #[test]
    fn chacha_chunking(data in proptest::collection::vec(any::<u8>(), 1..2048),
                       chunk in 1usize..257) {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&data);
        let mut c = ChaCha20::new(&key, &nonce);
        let mut pieced = Vec::new();
        for part in data.chunks(chunk) {
            pieced.extend_from_slice(&c.apply_copy(part));
        }
        prop_assert_eq!(pieced, whole);
    }

    /// AEAD roundtrips; any single-bit flip is rejected.
    #[test]
    fn aead_roundtrip_and_tamper(master in proptest::array::uniform32(any::<u8>()),
                                 nonce in proptest::array::uniform12(any::<u8>()),
                                 aad in proptest::collection::vec(any::<u8>(), 0..64),
                                 pt in proptest::collection::vec(any::<u8>(), 0..1024),
                                 flip_byte in 0usize..1056, flip_bit in 0u8..8) {
        let key = AeadKey::from_master(&master);
        let sealed = seal(&key, &nonce, &aad, &pt);
        prop_assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), pt);
        let mut bad = sealed.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(open(&key, &nonce, &aad, &bad).is_err());
    }

    /// Streaming through a *random sequence* of chunk sizes equals one-shot:
    /// every boundary between the buffered path, the narrow pass, and the
    /// wide pass is crossed at some point.
    #[test]
    fn chacha_random_chunk_sizes(data in proptest::collection::vec(any::<u8>(), 1..4096),
                                 cuts in proptest::collection::vec(1usize..1200, 1..16)) {
        let key = [3u8; 32];
        let nonce = [1u8; 12];
        let whole = ChaCha20::new(&key, &nonce).apply_copy(&data);
        let mut c = ChaCha20::new(&key, &nonce);
        let mut pieced = Vec::new();
        let mut rest: &[u8] = &data;
        let mut i = 0;
        while !rest.is_empty() {
            let take = cuts[i % cuts.len()].min(rest.len());
            i += 1;
            pieced.extend_from_slice(&c.apply_copy(&rest[..take]));
            rest = &rest[take..];
        }
        prop_assert_eq!(pieced, whole);
    }

    /// `clone_finalize` equals `clone().finalize()` at any prefix length and
    /// leaves the running state untouched.
    #[test]
    fn sha256_clone_finalize(data in proptest::collection::vec(any::<u8>(), 0..2048),
                             split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        prop_assert_eq!(h.clone_finalize(), h.clone().finalize());
        prop_assert_eq!(h.clone_finalize(), sha256(&data[..split]));
        // The peek must not disturb the running digest.
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// The in-place AEAD agrees with the allocating API in both directions.
    #[test]
    fn aead_in_place_matches(master in proptest::array::uniform32(any::<u8>()),
                             nonce in proptest::array::uniform12(any::<u8>()),
                             aad in proptest::collection::vec(any::<u8>(), 0..64),
                             pt in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let key = AeadKey::from_master(&master);
        let mut buf = pt.clone();
        seal_in_place(&key, &nonce, &aad, &mut buf);
        prop_assert_eq!(&buf, &seal(&key, &nonce, &aad, &pt));
        prop_assert_eq!(buf.len(), pt.len() + TAG_LEN);
        open_in_place(&key, &nonce, &aad, &mut buf).unwrap();
        prop_assert_eq!(&buf, &pt);
        // A tampered buffer is rejected with the ciphertext left intact.
        let mut bad = seal(&key, &nonce, &aad, &pt);
        let idx = bad.len() - 1;
        bad[idx] ^= 1;
        let snapshot = bad.clone();
        prop_assert!(open_in_place(&key, &nonce, &aad, &mut bad).is_err());
        prop_assert_eq!(bad, snapshot);
    }

    /// Signature decode never panics, and decode(encode(sig)) is identity.
    #[test]
    fn hashsig_codec(msg in proptest::collection::vec(any::<u8>(), 0..256),
                     garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut signer = MerkleSigner::generate([5u8; 32], 1);
        let sig = signer.sign(&msg).unwrap();
        let back = Signature::from_bytes(&sig.to_bytes()).unwrap();
        prop_assert_eq!(&back, &sig);
        prop_assert!(signer.verify_key().verify(&msg, &back));
        let _ = Signature::from_bytes(&garbage); // must not panic
    }
}
