//! Fault-plane property tests: crash + restart leaves the simulator's flow
//! and timer bookkeeping consistent, and a partition is a real cut — no
//! message crosses it, in either direction, for any schedule.

use proptest::prelude::*;
use simnet::{
    ConnId, Ctx, FaultAction, FaultPlan, Iface, Node, NodeId, SimDuration, SimTime, Simulator,
};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Echoes every message back.
struct Echo;
impl Node for Echo {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        ctx.send(conn, msg);
    }
}

/// Timer tag a Chatter arms far in the future; it must fire exactly once
/// per incarnation that lives long enough — never from a dead incarnation.
const STALE: u64 = 77;

/// Connects to the echo hub on (re)start, streams payloads, counts replies,
/// and arms one long timer whose pre-crash incarnation must never fire.
struct Chatter {
    hub: NodeId,
    payload: usize,
    /// Replies received since the most recent (re)start.
    replies_this_life: u32,
    /// Lifetimes begun (1 after first start, 2 after a restart).
    lives: u32,
    /// Times the STALE timer fired.
    stale_fires: u32,
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.lives += 1;
        let c = ctx.connect(self.hub, 80);
        for _ in 0..4 {
            ctx.send(c, vec![0xCD; self.payload]);
        }
        ctx.set_timer(SimDuration::from_secs(20), STALE);
    }

    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {
        self.replies_this_life += 1;
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
        if tag == STALE {
            self.stale_fires += 1;
        }
    }

    fn on_crash(&mut self) {
        // Volatile state dies with the process; counters of *observed*
        // history (lives, stale_fires) model what the test harness knows.
        self.replies_this_life = 0;
    }
}

proptest! {
    /// Crash a leaf mid-transfer at an arbitrary moment, restart it a bit
    /// later: the simulator's fair-share flow slots drain to zero on both
    /// ends (nothing dangles on the hub for flows the crash vaporised), the
    /// reborn leaf talks again, and the dead incarnation's long timer never
    /// fires — only the new incarnation's does, exactly once.
    #[test]
    fn crash_restart_leaves_bookkeeping_consistent(
        payload in 1usize..200_000,
        crash_ms in 1u64..3_000,
        restart_after_ms in 1u64..3_000,
    ) {
        let mut sim = Simulator::with_seed(9);
        let hub = sim.add_node("hub", Iface::residential(), Box::new(Echo));
        let leaf = sim.add_node(
            "leaf",
            Iface::residential(),
            Box::new(Chatter {
                hub,
                payload,
                replies_this_life: 0,
                lives: 0,
                stale_fires: 0,
            }),
        );
        let crash_at = SimTime::ZERO + ms(crash_ms);
        sim.install_faults(
            FaultPlan::new()
                .crash(crash_at, leaf)
                .restart(crash_at + ms(restart_after_ms), leaf),
        );
        // Far past the new incarnation's 20 s STALE deadline; the old
        // incarnation's (set before the crash) must have been suppressed.
        sim.run_until(secs(40));

        prop_assert_eq!(sim.active_link_slots(hub), (0, 0), "hub slots drained");
        prop_assert_eq!(sim.active_link_slots(leaf), (0, 0), "leaf slots drained");
        prop_assert!(!sim.is_crashed(leaf));
        let stats = sim.fault_stats();
        prop_assert_eq!((stats.crashes, stats.restarts), (1, 1));
        let (lives, replies, stale) = sim.with_node::<Chatter, _>(leaf, |n, _| {
            (n.lives, n.replies_this_life, n.stale_fires)
        });
        prop_assert_eq!(lives, 2, "restart re-ran on_start");
        prop_assert_eq!(stale, 1, "only the live incarnation's timer fired");
        prop_assert_eq!(replies, 4, "the reborn leaf completed its exchange");
    }
}

/// Sends a numbered message to `target` every 100 ms for 12 s.
struct Ticker {
    target: NodeId,
    conn: Option<ConnId>,
    seq: u32,
}
const TICK: u64 = 1;
impl Node for Ticker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.conn = Some(ctx.connect(self.target, 80));
        ctx.set_timer(ms(100), TICK);
    }
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != TICK {
            return;
        }
        if let Some(c) = self.conn {
            ctx.send(c, self.seq.to_be_bytes().to_vec());
            self.seq += 1;
        }
        if ctx.now() < secs(12) {
            ctx.set_timer(ms(100), TICK);
        }
    }
}

/// Records (sequence number, arrival time) of everything it receives.
struct Sink {
    got: Vec<(u32, SimTime)>,
}
impl Node for Sink {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId, msg: Vec<u8>) {
        let seq = u32::from_be_bytes(msg[..4].try_into().unwrap());
        self.got.push((seq, ctx.now()));
    }
}

/// Partition + heal is a clean cut: while the partition holds, nothing at
/// all is delivered across it — messages in flight when it lands, and
/// messages sent into it, are dropped rather than delayed — and traffic
/// resumes after the heal.
#[test]
fn partition_delivers_nothing_across_the_cut() {
    let mut sim = Simulator::with_seed(21);
    let sink = sim.add_node(
        "sink",
        Iface::residential(),
        Box::new(Sink { got: Vec::new() }),
    );
    let ticker = sim.add_node(
        "ticker",
        Iface::residential(),
        Box::new(Ticker {
            target: sink,
            conn: None,
            seq: 0,
        }),
    );
    sim.inject_fault(
        secs(5),
        FaultAction::Partition {
            group: vec![ticker],
        },
    );
    sim.inject_fault(secs(8), FaultAction::Heal);
    sim.run_until(secs(14));

    let got = sim.with_node::<Sink, _>(sink, |n, _| n.got.clone());
    assert!(!got.is_empty());
    for &(seq, at) in &got {
        assert!(
            at < secs(5) || at >= secs(8),
            "seq {seq} crossed the partition at {at:?}"
        );
    }
    // Dropped, not delayed: ~30 ticks fall inside the cut and never arrive.
    let dropped = sim.fault_stats().msgs_dropped;
    assert!(dropped >= 25, "partitioned sends were dropped: {dropped}");
    let last = got.iter().map(|&(s, _)| s).max().unwrap();
    assert!(
        got.iter().any(|&(_, at)| at >= secs(8)),
        "delivery resumed after the heal (last seq {last})"
    );
    // The two sides of the cut agree on what was lost: everything received
    // is everything sent, minus exactly the in-cut sequence numbers.
    let received: std::collections::BTreeSet<u32> = got.iter().map(|&(s, _)| s).collect();
    let sent = sim.with_node::<Ticker, _>(ticker, |n, _| n.seq);
    assert!(received.len() < sent as usize, "some ticks were lost");
}
