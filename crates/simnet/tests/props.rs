//! Property-based tests: codec roundtrips, decoder robustness, and
//! transport invariants under arbitrary inputs.

use proptest::prelude::*;
use simnet::wire::{Reader, Writer};
use simnet::{Iface, SimDuration};

proptest! {
    /// Every (u64, bytes, str, varint) tuple roundtrips exactly.
    #[test]
    fn wire_roundtrip(a: u64, b in proptest::collection::vec(any::<u8>(), 0..2048),
                      s in "\\PC{0,64}", v: u64, flag: bool) {
        let mut w = Writer::new();
        w.u64(a).bytes(&b).str(&s).varu64(v).bool(flag);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.bytes("b").unwrap(), &b[..]);
        prop_assert_eq!(r.str("s").unwrap(), s);
        prop_assert_eq!(r.varu64().unwrap(), v);
        prop_assert_eq!(r.bool().unwrap(), flag);
        r.finish().unwrap();
    }

    /// The decoder never panics on arbitrary garbage, whatever we ask of it.
    #[test]
    fn reader_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = Reader::new(&garbage);
        let _ = r.clone().u8();
        let _ = r.clone().u16();
        let _ = r.clone().u32();
        let _ = r.clone().u64();
        let _ = r.clone().varu64();
        let _ = r.clone().bytes("x");
        let _ = r.str("y");
    }

    /// Varints use minimal space and roundtrip at every magnitude.
    #[test]
    fn varint_roundtrip(v: u64) {
        let mut w = Writer::new();
        w.varu64(v);
        let buf = w.into_bytes();
        prop_assert!(buf.len() <= 10);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.varu64().unwrap(), v);
    }

    /// Link fair shares always partition the capacity sanely.
    #[test]
    fn iface_share_bounds(cap in 1u64..u64::MAX / 2, n in 0usize..10_000) {
        let i = Iface::symmetric(SimDuration::ZERO, cap);
        let share = i.up_share(n);
        prop_assert!(share >= 1);
        prop_assert!(share <= cap);
        if n > 0 {
            // Shares never overcommit by more than rounding.
            prop_assert!(share.saturating_mul(n as u64) <= cap.saturating_add(n as u64));
        }
    }

    /// Transfer-time arithmetic never panics or divides by zero.
    #[test]
    fn for_bytes_total(bytes: u64, rate: u64) {
        let d = SimDuration::for_bytes(bytes, rate);
        // Zero rate means "ideal" (zero time); otherwise monotone in bytes.
        if rate > 0 && bytes > 0 {
            prop_assert!(d >= SimDuration::for_bytes(bytes - 1, rate));
        } else if rate == 0 {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
    }
}

// ---------------------------------------------------------------------------
// Timer semantics at the Simulator level: cancelled timers never fire, live
// timers all fire exactly once in schedule order — including under enough
// set/cancel churn to drive the tombstone-pruning sweep in `cancel_timer`.
// ---------------------------------------------------------------------------

use simnet::{Ctx, Iface as SimIface, Node, SimTime, Simulator};

/// Driver timer tag (re-arms itself to generate churn).
const DRIVER: u64 = u64::MAX;
/// Victim timer tag: set and immediately cancelled each churn round, so it
/// must never reach `on_timer`.
const VICTIM: u64 = u64::MAX - 1;

struct TimerHarness {
    /// Delay (µs) of each long-lived timer; its index is its tag.
    delays: Vec<u64>,
    /// Which long-lived timers get cancelled right after being set.
    cancel: Vec<bool>,
    /// Set/cancel churn rounds to run before the long-lived timers fire.
    churn_rounds: u32,
    /// Tags observed in `on_timer`, in firing order.
    fired: Vec<u64>,
}

impl Node for TimerHarness {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Long-lived timers, interleaved with their cancellations.
        let ids: Vec<_> = self
            .delays
            .iter()
            .enumerate()
            .map(|(i, &us)| ctx.set_timer(SimDuration::from_micros(1_000 + us), i as u64))
            .collect();
        for (id, &cancel) in ids.into_iter().zip(self.cancel.iter()) {
            if cancel {
                ctx.cancel_timer(id);
            }
        }
        if self.churn_rounds > 0 {
            ctx.set_timer(SimDuration::from_micros(2), DRIVER);
        }
    }

    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: simnet::ConnId, _msg: Vec<u8>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            DRIVER => {
                self.churn_rounds -= 1;
                // A short-lived victim: it pops (tombstoned) before the next
                // driver tick, leaving a stale tombstone the pruning sweep
                // must eventually collect — without ever firing it.
                let victim = ctx.set_timer(SimDuration::from_micros(1), VICTIM);
                ctx.cancel_timer(victim);
                if self.churn_rounds > 0 {
                    ctx.set_timer(SimDuration::from_micros(2), DRIVER);
                }
            }
            _ => self.fired.push(tag),
        }
    }
}

proptest! {
    /// Same seed in, same firing schedule out: cancelled timers are silent,
    /// the rest fire exactly once, ordered by (deadline, insertion order).
    #[test]
    fn cancelled_timers_never_fire(
        delays in proptest::collection::vec(0u64..5_000, 1..24),
        cancel in proptest::collection::vec(any::<bool>(), 24..25),
        churn_rounds in 0u32..160,
    ) {
        let mut sim = Simulator::with_seed(7);
        let node = sim.add_node(
            "timers",
            SimIface::ideal(),
            Box::new(TimerHarness {
                delays: delays.clone(),
                cancel: cancel.clone(),
                churn_rounds,
                fired: Vec::new(),
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));

        let fired = sim.with_node::<TimerHarness, _>(node, |n, _| n.fired.clone());
        // Expected: non-cancelled long-lived tags, stably ordered by
        // deadline (ties resolve to insertion order — the queue's seq).
        let mut expect: Vec<(u64, u64)> = delays
            .iter()
            .enumerate()
            .filter(|(i, _)| !cancel[*i])
            .map(|(i, &us)| (us, i as u64))
            .collect();
        expect.sort();
        let expect: Vec<u64> = expect.into_iter().map(|(_, tag)| tag).collect();
        prop_assert_eq!(fired, expect);
    }
}

// ---------------------------------------------------------------------------
// Sharded-engine properties: the partition is a pure function of node id, the
// barrier exchange makes results invariant under shard count, and conservative
// lookahead never delivers a message before its serial-engine arrival time.
// ---------------------------------------------------------------------------

use simnet::{shard_of, ConnId, NodeId, SimConfig};

/// Echoes every message back.
struct PropEcho;
impl Node for PropEcho {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        ctx.send(conn, msg);
    }
}

/// Connects to `target` at start, sends `payload` bytes, records when the
/// echo lands.
struct PropPinger {
    target: NodeId,
    payload: usize,
    reply_at: Option<SimTime>,
}
impl Node for PropPinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let c = ctx.connect(self.target, 80);
        ctx.send(c, vec![0xAB; self.payload]);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {
        self.reply_at = Some(ctx.now());
    }
}

/// Build a pinger/echo topology from (latency_ms, up_kbps, payload) rows and
/// run it to quiescence on the given engine config. Downlinks are unlimited
/// so the serial fair-share model and the sharded ingress-pipe model agree on
/// receive-side cost (zero), which is what makes serial arrival times a
/// comparable baseline. Returns per-pinger echo times keyed by the echo
/// node's id (connection ids differ between engines; node ids do not).
fn run_topology(rows: &[(u64, u64, usize)], shards: usize) -> (Vec<(u32, u64)>, u64, u64) {
    let mut sim = Simulator::new(SimConfig {
        seed: 11,
        shards,
        shard_threads: 1,
        ..SimConfig::default()
    });
    let mut pingers = Vec::new();
    for (i, &(lat_ms, up_kbps, payload)) in rows.iter().enumerate() {
        let iface = SimIface {
            latency: SimDuration::from_millis(1 + lat_ms),
            up_bps: up_kbps * 1000,
            down_bps: 0,
        };
        let echo = sim.add_node(format!("echo{i}"), iface, Box::new(PropEcho));
        let ping = sim.add_node(
            format!("ping{i}"),
            iface,
            Box::new(PropPinger {
                target: echo,
                payload: 1 + payload,
                reply_at: None,
            }),
        );
        pingers.push((ping, echo));
    }
    sim.run_to_quiescence();
    let mut out = Vec::new();
    for &(ping, echo) in &pingers {
        let t = sim.with_node::<PropPinger, _>(ping, |n, _| n.reply_at);
        out.push((echo.0, t.expect("every pinger hears its echo").as_nanos()));
    }
    let stats = sim.stats();
    (out, stats.msgs_delivered, stats.bytes_delivered)
}

proptest! {
    /// `shard_of` is total (never panics, always in range) and depends only
    /// on the node id and shard count.
    #[test]
    fn shard_partition_is_total_and_deterministic(id: u32, shards in 0usize..64) {
        let s = shard_of(NodeId(id), shards);
        prop_assert!(s < shards.max(1));
        prop_assert_eq!(s, shard_of(NodeId(id), shards));
        // Placement ignores everything but (id, shards): recomputing through
        // a fresh NodeId value cannot move the node.
        prop_assert_eq!(s, shard_of(NodeId(id.wrapping_add(0)), shards));
    }

    /// Barrier exchange ordering is invariant under shard count: the same
    /// topology produces identical delivery times and counters at any
    /// `--shards N >= 1`.
    #[test]
    fn sharded_results_invariant_under_shard_count(
        rows in proptest::collection::vec((0u64..40, 50u64..500, 0usize..30_000), 1..5),
    ) {
        let base = run_topology(&rows, 1);
        for shards in [2usize, 3, 4] {
            let got = run_topology(&rows, shards);
            prop_assert_eq!(&got, &base, "diverged at shards={}", shards);
        }
    }

    /// Conservative lookahead never delivers a message earlier than the
    /// serial engine would: with unlimited downlinks the two cost models
    /// coincide, so every sharded echo time must be >= (here: ==) its serial
    /// arrival time.
    #[test]
    fn lookahead_never_beats_serial_arrival(
        rows in proptest::collection::vec((0u64..40, 50u64..500, 0usize..30_000), 1..4),
    ) {
        let serial = run_topology(&rows, 0);
        let sharded = run_topology(&rows, 3);
        for ((peer_a, t_serial), (peer_b, t_sharded)) in
            serial.0.iter().zip(sharded.0.iter())
        {
            prop_assert_eq!(peer_a, peer_b);
            prop_assert!(
                *t_sharded >= *t_serial,
                "sharded delivered early: peer n{} serial={} sharded={}",
                peer_a, t_serial, t_sharded
            );
        }
    }
}
