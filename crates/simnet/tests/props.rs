//! Property-based tests: codec roundtrips, decoder robustness, and
//! transport invariants under arbitrary inputs.

use proptest::prelude::*;
use simnet::wire::{Reader, Writer};
use simnet::{Iface, SimDuration};

proptest! {
    /// Every (u64, bytes, str, varint) tuple roundtrips exactly.
    #[test]
    fn wire_roundtrip(a: u64, b in proptest::collection::vec(any::<u8>(), 0..2048),
                      s in "\\PC{0,64}", v: u64, flag: bool) {
        let mut w = Writer::new();
        w.u64(a).bytes(&b).str(&s).varu64(v).bool(flag);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u64().unwrap(), a);
        prop_assert_eq!(r.bytes("b").unwrap(), &b[..]);
        prop_assert_eq!(r.str("s").unwrap(), s);
        prop_assert_eq!(r.varu64().unwrap(), v);
        prop_assert_eq!(r.bool().unwrap(), flag);
        r.finish().unwrap();
    }

    /// The decoder never panics on arbitrary garbage, whatever we ask of it.
    #[test]
    fn reader_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut r = Reader::new(&garbage);
        let _ = r.clone().u8();
        let _ = r.clone().u16();
        let _ = r.clone().u32();
        let _ = r.clone().u64();
        let _ = r.clone().varu64();
        let _ = r.clone().bytes("x");
        let _ = r.str("y");
    }

    /// Varints use minimal space and roundtrip at every magnitude.
    #[test]
    fn varint_roundtrip(v: u64) {
        let mut w = Writer::new();
        w.varu64(v);
        let buf = w.into_bytes();
        prop_assert!(buf.len() <= 10);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.varu64().unwrap(), v);
    }

    /// Link fair shares always partition the capacity sanely.
    #[test]
    fn iface_share_bounds(cap in 1u64..u64::MAX / 2, n in 0usize..10_000) {
        let i = Iface::symmetric(SimDuration::ZERO, cap);
        let share = i.up_share(n);
        prop_assert!(share >= 1);
        prop_assert!(share <= cap);
        if n > 0 {
            // Shares never overcommit by more than rounding.
            prop_assert!(share.saturating_mul(n as u64) <= cap.saturating_add(n as u64));
        }
    }

    /// Transfer-time arithmetic never panics or divides by zero.
    #[test]
    fn for_bytes_total(bytes: u64, rate: u64) {
        let d = SimDuration::for_bytes(bytes, rate);
        // Zero rate means "ideal" (zero time); otherwise monotone in bytes.
        if rate > 0 && bytes > 0 {
            prop_assert!(d >= SimDuration::for_bytes(bytes - 1, rate));
        } else if rate == 0 {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
    }
}
