//! Delivery-batch coalescing: adjacent same-instant arrivals on one
//! connection reach the receiver as a single [`Node::on_msgs`] run, in
//! order, with per-message stats accounting intact — and nodes that don't
//! override `on_msgs` see the exact per-message callback sequence they
//! always did.

use simnet::{ConnId, Ctx, Iface, Node, NodeId, SimConfig, Simulator};

/// Records every delivery exactly as the event loop hands it over.
#[derive(Default)]
struct BatchSink {
    /// One entry per dispatch: the messages it carried.
    deliveries: Vec<Vec<Vec<u8>>>,
}

impl Node for BatchSink {
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, msg: Vec<u8>) {
        self.deliveries.push(vec![msg]);
    }
    fn on_msgs(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, msgs: Vec<Vec<u8>>) {
        self.deliveries.push(msgs);
    }
}

/// Sends `n` back-to-back messages at start; over an ideal interface they
/// all arrive at the same instant.
struct Burst {
    dst: NodeId,
    n: u8,
    msg_len: usize,
}

impl Node for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let conn = ctx.connect(self.dst, 80);
        for i in 0..self.n {
            ctx.send(conn, vec![i; self.msg_len]);
        }
    }
    fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {}
}

#[test]
fn same_tick_arrivals_coalesce_in_order() {
    let mut sim = Simulator::new(SimConfig::default());
    let sink = sim.add_node("sink", Iface::ideal(), Box::new(BatchSink::default()));
    sim.add_node(
        "burst",
        Iface::ideal(),
        Box::new(Burst {
            dst: sink,
            n: 5,
            msg_len: 16,
        }),
    );
    sim.run_to_quiescence();
    assert_eq!(sim.stats().msgs_delivered, 5);
    let sink = sim.node_ref::<BatchSink>(sink);
    assert_eq!(sink.deliveries.len(), 1, "one coalesced dispatch");
    let batch = &sink.deliveries[0];
    assert_eq!(batch.len(), 5);
    for (i, msg) in batch.iter().enumerate() {
        assert_eq!(msg, &vec![i as u8; 16], "delivery order preserved");
    }
}

#[test]
fn single_arrivals_use_on_msg() {
    // Messages larger than the serialization quantum never share a chunk,
    // so each completes on its own chunk boundary at a distinct time:
    // every delivery is a singleton and takes the plain on_msg path of the
    // default impl.
    let mut sim = Simulator::new(SimConfig::default());
    let iface = Iface::symmetric(simnet::SimDuration::from_millis(5), 100_000);
    let sink = sim.add_node("sink", iface, Box::new(BatchSink::default()));
    sim.add_node(
        "burst",
        iface,
        Box::new(Burst {
            dst: sink,
            n: 4,
            msg_len: 20_000,
        }),
    );
    sim.run_to_quiescence();
    assert_eq!(sim.stats().msgs_delivered, 4);
    let sink = sim.node_ref::<BatchSink>(sink);
    assert_eq!(sink.deliveries.len(), 4, "spaced arrivals stay per-message");
    assert!(sink.deliveries.iter().all(|d| d.len() == 1));
}
