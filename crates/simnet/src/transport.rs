//! The TCP-like flow cost model.
//!
//! Connections carry ordered, reliable messages. The *timing* of delivery is
//! governed per direction by:
//!
//! * a one-RTT connection handshake,
//! * a congestion window (slow start to `ssthresh`, then additive increase),
//! * the max-min fair share of the sender's uplink and receiver's downlink.
//!
//! Loss is not modeled — the live-Tor effects the paper measures (slow-start
//! ramp on short transfers, bandwidth sharing on long ones) do not need it,
//! and omitting retransmission keeps the simulator exactly reproducible.
//! `ssthresh` therefore doubles as the "steady state" window.

use crate::time::SimDuration;

/// Tunable constants of the transport model.
#[derive(Debug, Clone, Copy)]
pub struct TransportCfg {
    /// Maximum segment size in bytes; congestion-avoidance growth quantum.
    pub mss: u32,
    /// Initial congestion window in bytes (RFC 6928's 10 segments).
    pub init_cwnd: u32,
    /// Slow-start threshold in bytes; exponential growth stops here.
    pub ssthresh: u32,
    /// Hard cap on the congestion window (receive-window stand-in).
    pub max_cwnd: u32,
    /// Serialization quantum: rates are re-evaluated every chunk of at most
    /// this many bytes.
    pub chunk: u32,
    /// Round-trip time of a node's loopback, for same-host connections
    /// (e.g. a Bento server talking to its co-resident Tor relay).
    pub loopback_rtt: SimDuration,
    /// Loopback throughput in bytes/s.
    pub loopback_bps: u64,
    /// Fixed per-message protocol overhead (headers), in bytes, charged to
    /// serialization but not delivered to the application.
    pub per_msg_overhead: u32,
}

impl Default for TransportCfg {
    fn default() -> Self {
        TransportCfg {
            mss: 1460,
            init_cwnd: 10 * 1460,
            ssthresh: 128 * 1024,
            max_cwnd: 1024 * 1024,
            chunk: 16 * 1024,
            loopback_rtt: SimDuration::from_micros(100),
            loopback_bps: 1_000_000_000,
            per_msg_overhead: 52, // IP + TCP + timestamps, amortized
        }
    }
}

/// Per-direction congestion state of a connection.
#[derive(Debug, Clone, Copy)]
pub struct Cwnd {
    /// Current window in bytes.
    pub window: u32,
    /// Threshold separating slow start from congestion avoidance.
    pub ssthresh: u32,
    /// Cap.
    pub max: u32,
    /// MSS, the additive-increase quantum.
    pub mss: u32,
}

impl Cwnd {
    /// Fresh window from the transport configuration.
    pub fn new(cfg: &TransportCfg) -> Self {
        Cwnd {
            window: cfg.init_cwnd,
            ssthresh: cfg.ssthresh,
            max: cfg.max_cwnd,
            mss: cfg.mss,
        }
    }

    /// Account `acked` delivered bytes and grow the window accordingly:
    /// exponential below `ssthresh` (window += acked), additive above
    /// (window += mss·acked/window).
    pub fn on_acked(&mut self, acked: u32) {
        if self.window < self.ssthresh {
            self.window = self
                .window
                .saturating_add(acked)
                .min(self.ssthresh.max(self.window));
        } else {
            let grow = ((self.mss as u64 * acked as u64) / self.window.max(1) as u64) as u32;
            self.window = self.window.saturating_add(grow.max(1));
        }
        self.window = self.window.min(self.max);
    }

    /// The window-limited sending rate for a path of round-trip `rtt`,
    /// in bytes per second. An (unrealistic) zero RTT yields `u64::MAX`.
    pub fn rate(&self, rtt: SimDuration) -> u64 {
        if rtt.is_zero() {
            return u64::MAX;
        }
        // window / rtt  =  window * 1e9 / rtt_ns
        ((self.window as u128 * 1_000_000_000u128) / rtt.as_nanos() as u128).min(u64::MAX as u128)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_window() {
        let cfg = TransportCfg::default();
        let mut c = Cwnd::new(&cfg);
        let w0 = c.window;
        // Ack a full window: slow start should double it.
        c.on_acked(w0);
        assert_eq!(c.window, 2 * w0);
    }

    #[test]
    fn congestion_avoidance_is_additive() {
        let cfg = TransportCfg::default();
        let mut c = Cwnd::new(&cfg);
        c.window = cfg.ssthresh; // at the boundary: CA regime
        let w = c.window;
        c.on_acked(w); // one full window acked -> +~1 MSS
        assert!(c.window >= w + cfg.mss - 1 && c.window <= w + cfg.mss + 1);
    }

    #[test]
    fn window_never_exceeds_cap() {
        let cfg = TransportCfg::default();
        let mut c = Cwnd::new(&cfg);
        for _ in 0..10_000 {
            c.on_acked(u32::MAX / 2);
        }
        assert!(c.window <= cfg.max_cwnd);
    }

    #[test]
    fn rate_is_window_over_rtt() {
        let cfg = TransportCfg::default();
        let c = Cwnd::new(&cfg);
        let rtt = SimDuration::from_millis(100);
        // 14600 bytes / 0.1 s = 146_000 B/s
        assert_eq!(c.rate(rtt), 146_000);
        assert_eq!(c.rate(SimDuration::ZERO), u64::MAX);
    }
}
