//! Deterministic fault injection: crash/restart nodes, degrade or kill
//! links, partition and heal node sets.
//!
//! A [`FaultPlan`] is a schedule of [`FaultAction`]s at absolute sim times,
//! installed into the event queue with `Simulator::install_faults`. Every
//! probabilistic fault (loss, corruption) draws from the simulation's single
//! seeded RNG, and draws happen only while a fault is configured on the
//! affected pair — so a fault-free run consumes exactly the RNG stream it
//! consumed before this module existed, and any chaos run replays
//! byte-identically from its seed plus its plan.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Degradation applied to traffic between a pair of nodes (or, via
/// `FaultAction::AllLinks`, to every non-loopback pair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFault {
    /// Per-message loss probability in parts per million.
    pub loss_ppm: u32,
    /// Per-message corruption probability in parts per million (one byte of
    /// the payload is flipped).
    pub corrupt_ppm: u32,
    /// Extra one-way latency added to every delivery.
    pub extra_latency: SimDuration,
    /// The link is down entirely: nothing crosses, connects are refused.
    pub down: bool,
}

impl LinkFault {
    /// A fault dropping `pct` percent of messages (0.0–100.0).
    pub fn loss_pct(pct: f64) -> LinkFault {
        LinkFault {
            loss_ppm: (pct.clamp(0.0, 100.0) * 10_000.0) as u32,
            ..LinkFault::default()
        }
    }

    /// A fault corrupting `pct` percent of messages (0.0–100.0).
    pub fn corrupt_pct(pct: f64) -> LinkFault {
        LinkFault {
            corrupt_ppm: (pct.clamp(0.0, 100.0) * 10_000.0) as u32,
            ..LinkFault::default()
        }
    }

    /// A fault adding fixed one-way latency.
    pub fn latency_spike(extra: SimDuration) -> LinkFault {
        LinkFault {
            extra_latency: extra,
            ..LinkFault::default()
        }
    }

    /// A dead link.
    pub fn killed() -> LinkFault {
        LinkFault {
            down: true,
            ..LinkFault::default()
        }
    }

    /// True when this fault does nothing (used to clear a pair entry).
    pub fn is_clear(&self) -> bool {
        *self == LinkFault::default()
    }
}

/// One scheduled fault-plane action.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Crash a node: every connection touching it dies, in-flight flows are
    /// dropped, queued timers will not fire, and the node's volatile state
    /// is discarded (`Node::on_crash`).
    Crash(NodeId),
    /// Restart a crashed node under a new incarnation (`Node::on_restart`,
    /// which defaults to re-running `on_start`).
    Restart(NodeId),
    /// Set (or, with a clear fault, remove) the fault on one node pair.
    Link {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The degradation; `LinkFault::is_clear` removes the entry.
        fault: LinkFault,
    },
    /// Set the default fault applied to every pair without its own entry.
    AllLinks {
        /// The degradation; a clear fault restores healthy defaults.
        fault: LinkFault,
    },
    /// Partition the network: nodes inside `group` cannot exchange anything
    /// with nodes outside it (messages already in flight across the cut are
    /// dropped on arrival; new connects are refused).
    Partition {
        /// One side of the cut.
        group: Vec<NodeId>,
    },
    /// Remove the partition.
    Heal,
}

/// A seeded, replayable schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub(crate) entries: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule an arbitrary action.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.entries.push((at, action));
        self
    }

    /// Crash `node` at `at`.
    pub fn crash(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, FaultAction::Crash(node))
    }

    /// Restart `node` at `at`.
    pub fn restart(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, FaultAction::Restart(node))
    }

    /// Apply `fault` to the `a`–`b` pair at `at`.
    pub fn link(self, at: SimTime, a: NodeId, b: NodeId, fault: LinkFault) -> Self {
        self.at(at, FaultAction::Link { a, b, fault })
    }

    /// Clear the `a`–`b` pair fault at `at`.
    pub fn link_clear(self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.link(at, a, b, LinkFault::default())
    }

    /// Apply `fault` as the all-links default at `at`.
    pub fn all_links(self, at: SimTime, fault: LinkFault) -> Self {
        self.at(at, FaultAction::AllLinks { fault })
    }

    /// Clear the all-links default at `at`.
    pub fn all_links_clear(self, at: SimTime) -> Self {
        self.all_links(at, LinkFault::default())
    }

    /// Partition `group` from the rest of the network at `at`.
    pub fn partition(self, at: SimTime, group: Vec<NodeId>) -> Self {
        self.at(at, FaultAction::Partition { group })
    }

    /// Heal any partition at `at`.
    pub fn heal(self, at: SimTime) -> Self {
        self.at(at, FaultAction::Heal)
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters of faults the simulator actually applied.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Nodes crashed.
    pub crashes: u64,
    /// Nodes restarted.
    pub restarts: u64,
    /// Messages dropped by loss, dead links, partitions, or crashed
    /// endpoints.
    pub msgs_dropped: u64,
    /// Messages with a byte flipped in flight.
    pub msgs_corrupted: u64,
    /// Connection attempts refused (crashed/partitioned/dead-link target).
    pub conns_refused: u64,
}
