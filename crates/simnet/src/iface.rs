//! Node access interfaces: the link between a node and the internet core.
//!
//! Every node attaches to the simulated internet through one interface with a
//! one-way propagation delay to the core and asymmetric up/down capacities.
//! The end-to-end path between two nodes is modeled as
//! `A.latency + B.latency` of propagation and the max-min fair share of the
//! bottleneck of `A`'s uplink and `B`'s downlink — the classic "dumbbell
//! through a core" abstraction, which captures everything the Bento
//! evaluation measures (RTT amplification and shared access bandwidth).

use crate::time::SimDuration;

/// Configuration of a node's access interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iface {
    /// One-way propagation delay from this node to the internet core.
    pub latency: SimDuration,
    /// Uplink capacity in bytes per second. `0` means "ideal" (infinite).
    pub up_bps: u64,
    /// Downlink capacity in bytes per second. `0` means "ideal" (infinite).
    pub down_bps: u64,
}

impl Iface {
    /// A symmetric interface.
    pub fn symmetric(latency: SimDuration, bps: u64) -> Self {
        Iface {
            latency,
            up_bps: bps,
            down_bps: bps,
        }
    }

    /// A typical home broadband client: 20 ms to the core, 20 Mbit/s down,
    /// 5 Mbit/s up.
    pub fn residential() -> Self {
        Iface {
            latency: SimDuration::from_millis(20),
            up_bps: 5_000_000 / 8,    // 5 Mbit/s in bytes/s
            down_bps: 20_000_000 / 8, // 20 Mbit/s in bytes/s
        }
    }

    /// A typical datacenter/VPS host: 5 ms to the core, 100 Mbit/s symmetric.
    pub fn datacenter() -> Self {
        Iface::symmetric(SimDuration::from_millis(5), 100_000_000 / 8)
    }

    /// A volunteer Tor relay: 15 ms to the core, ~16 Mbit/s symmetric.
    ///
    /// Median advertised relay bandwidth on the live network is a few MB/s;
    /// per-circuit throughput is typically ~100 KB/s–1 MB/s once shared,
    /// which is the regime Table 2 of the paper reflects.
    pub fn tor_relay() -> Self {
        Iface::symmetric(SimDuration::from_millis(15), 2_000_000)
    }

    /// An "ideal" interface with no delay or capacity limit, for unit tests.
    pub fn ideal() -> Self {
        Iface {
            latency: SimDuration::ZERO,
            up_bps: 0,
            down_bps: 0,
        }
    }

    /// Fair share of the uplink among `n` active flows, in bytes/s.
    /// Returns `u64::MAX` for ideal interfaces.
    pub fn up_share(&self, n: usize) -> u64 {
        share(self.up_bps, n)
    }

    /// Fair share of the downlink among `n` active flows, in bytes/s.
    pub fn down_share(&self, n: usize) -> u64 {
        share(self.down_bps, n)
    }
}

fn share(capacity: u64, n: usize) -> u64 {
    if capacity == 0 {
        u64::MAX
    } else {
        (capacity / n.max(1) as u64).max(1)
    }
}

impl Default for Iface {
    fn default() -> Self {
        Iface::residential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residential_has_asymmetric_rates() {
        let i = Iface::residential();
        assert!(i.down_bps > i.up_bps);
        assert_eq!(i.down_bps, 2_500_000);
        assert_eq!(i.up_bps, 625_000);
    }

    #[test]
    fn ideal_shares_are_unbounded() {
        let i = Iface::ideal();
        assert_eq!(i.up_share(10), u64::MAX);
        assert_eq!(i.down_share(0), u64::MAX);
    }

    #[test]
    fn shares_divide_capacity() {
        let i = Iface::symmetric(SimDuration::ZERO, 1_000_000);
        assert_eq!(i.up_share(1), 1_000_000);
        assert_eq!(i.up_share(4), 250_000);
        // zero active flows counts as one so the next flow sees full capacity
        assert_eq!(i.up_share(0), 1_000_000);
        // share never reaches zero even with absurd flow counts
        assert_eq!(i.up_share(usize::MAX), 1);
    }
}
