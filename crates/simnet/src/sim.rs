//! The simulator: owns the clock, the event queue, the nodes, their access
//! interfaces, every connection's transport state, and the sniffers.

use crate::event::{EventKind, EventQueue, FlowDir};
use crate::fault::{FaultAction, FaultPlan, FaultStats, LinkFault};
use crate::iface::Iface;
use crate::node::{ConnId, Ctx, CtxInner, Node, NodeId};
use crate::shard::ShardedSim;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Direction, Sniffer, TraceEvent};
use crate::transport::{Cwnd, TransportCfg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
// bento-lint: allow(BL001) -- HashSet here is only `cancelled_timers` (see below)
use std::collections::{BTreeMap, HashSet, VecDeque};

// Telemetry is flushed once per `run_until` call, not per event: the hot
// loop accumulates into plain `SimStats`/`BufPool` fields exactly as before
// and the epilogue reports the deltas. Only the per-delivery message-size
// histogram records inline (and only in `Mode::Full`).
static T_EVENTS: telemetry::Counter = telemetry::Counter::new("simnet.events");
static T_MSGS: telemetry::Counter = telemetry::Counter::new("simnet.msgs_delivered");
static T_BYTES: telemetry::Counter = telemetry::Counter::new("simnet.bytes_delivered");
static T_CONNS: telemetry::Counter = telemetry::Counter::new("simnet.conns_opened");
static T_POOL_HITS: telemetry::Counter = telemetry::Counter::new("simnet.pool.hits");
static T_POOL_MISSES: telemetry::Counter = telemetry::Counter::new("simnet.pool.misses");
static T_POOL_RECYCLED: telemetry::Counter = telemetry::Counter::new("simnet.pool.recycled");
static T_TIMER_SWEEPS: telemetry::Counter =
    telemetry::Counter::new("simnet.timer_tombstone_sweeps");
static T_QUEUE_DEPTH: telemetry::Gauge = telemetry::Gauge::new("simnet.queue_depth");
static T_MSG_BYTES: telemetry::Histo = telemetry::Histo::new("simnet.msg_bytes");
static T_RUN: telemetry::Span = telemetry::Span::new("simnet.run_until");
static T_FAULT_CRASHES: telemetry::Counter = telemetry::Counter::new("simnet.fault.crashes");
static T_FAULT_RESTARTS: telemetry::Counter = telemetry::Counter::new("simnet.fault.restarts");
static T_FAULT_DROPPED: telemetry::Counter = telemetry::Counter::new("simnet.fault.msgs_dropped");
static T_FAULT_CORRUPTED: telemetry::Counter =
    telemetry::Counter::new("simnet.fault.msgs_corrupted");
static T_FAULT_REFUSED: telemetry::Counter = telemetry::Counter::new("simnet.fault.conns_refused");

/// Top-level configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the simulation's single RNG; equal seeds give equal runs.
    pub seed: u64,
    /// Transport cost-model parameters.
    pub transport: TransportCfg,
    /// `0` (default) selects the classic serial engine. `N >= 1` selects the
    /// sharded conservative-PDES engine ([`crate::shard`]) with `N` shards;
    /// sharded results are byte-identical for every `N >= 1` but use a
    /// slightly different (partition-independent) transport model than the
    /// serial engine, so `0` and `N >= 1` are distinct baselines.
    pub shards: usize,
    /// Worker threads for the sharded engine's window loop: `0` (default)
    /// means one per available core, capped at the shard count. Thread count
    /// never affects results.
    pub shard_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xB3_0770,
            transport: TransportCfg::default(),
            shards: 0,
            shard_threads: 0,
        }
    }
}

/// Aggregate counters, useful for sanity checks and benches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed by the main loop.
    pub events: u64,
    /// Application messages delivered.
    pub msgs_delivered: u64,
    /// Application payload bytes delivered.
    pub bytes_delivered: u64,
    /// Connections opened.
    pub conns_opened: u64,
}

/// One direction's transmit state: the send queue, chunk-serialization
/// progress, handshake/close flags and the congestion window. Shared with
/// the sharded engine, where each connection *half* owns one of these.
#[derive(Debug)]
pub(crate) struct DirState {
    pub(crate) queue: VecDeque<Vec<u8>>,
    /// Bytes of the front message (payload + overhead) already serialized.
    pub(crate) front_sent: u64,
    /// Size of the chunk currently serializing, if `busy`.
    pub(crate) inflight_chunk: u32,
    pub(crate) busy: bool,
    /// True once this direction may transmit (handshake progress).
    pub(crate) ready: bool,
    pub(crate) closing: bool,
    pub(crate) close_sent: bool,
    pub(crate) cwnd: Cwnd,
}

impl DirState {
    pub(crate) fn new(cfg: &TransportCfg) -> Self {
        DirState {
            queue: VecDeque::new(),
            front_sent: 0,
            inflight_chunk: 0,
            busy: false,
            ready: false,
            closing: false,
            close_sent: false,
            cwnd: Cwnd::new(cfg),
        }
    }
}

#[derive(Debug)]
struct Conn {
    a: NodeId,
    b: NodeId,
    port: u16,
    dirs: [DirState; 2],
    dead: bool,
}

impl Conn {
    fn dir_index(d: FlowDir) -> usize {
        match d {
            FlowDir::Forward => 0,
            FlowDir::Backward => 1,
        }
    }
    fn sender(&self, d: FlowDir) -> NodeId {
        match d {
            FlowDir::Forward => self.a,
            FlowDir::Backward => self.b,
        }
    }
    fn receiver(&self, d: FlowDir) -> NodeId {
        match d {
            FlowDir::Forward => self.b,
            FlowDir::Backward => self.a,
        }
    }
}

/// A free-list of cleared `Vec<u8>` buffers shared by every node in a run.
///
/// The hot loop moves one 514-byte cell buffer per hop; without reuse each
/// delivery allocates a fresh `Vec` in [`Ctx::send`] and drops the arrived
/// one in `on_msg`. Nodes return finished buffers with [`Ctx::recycle_buf`]
/// and draw replacements with [`Ctx::take_buf`], so a steady-state transfer
/// recirculates a handful of allocations instead of making millions.
#[derive(Debug, Default)]
pub(crate) struct BufPool {
    bufs: Vec<Vec<u8>>,
    /// Takes served from a parked buffer vs. a fresh allocation; plain
    /// fields so the hot path stays telemetry-free (flushed by `run_until`).
    hits: u64,
    misses: u64,
    recycled: u64,
}

impl BufPool {
    /// Don't hoard: beyond this many parked buffers, returns are dropped.
    const MAX_BUFS: usize = 4096;
    /// Oversized buffers (multi-MB dir responses) are not worth keeping.
    const MAX_CAP: usize = 64 * 1024;

    pub(crate) fn take(&mut self, cap: usize) -> Vec<u8> {
        match self.bufs.pop() {
            Some(mut buf) => {
                self.hits += 1;
                if buf.capacity() < cap {
                    buf.reserve(cap - buf.len());
                }
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(cap)
            }
        }
    }

    pub(crate) fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0
            || buf.capacity() > Self::MAX_CAP
            || self.bufs.len() >= Self::MAX_BUFS
        {
            return;
        }
        buf.clear();
        self.bufs.push(buf);
        self.recycled += 1;
    }

    /// `(hits, misses, recycled)` so other engines can flush pool telemetry.
    pub(crate) fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.recycled)
    }
}

/// One run's worth of engine telemetry deltas, flushed to the process
/// registry in a single shot by [`flush_run_telemetry`]. The serial engine
/// inlines the equivalent in `run_until`; the sharded engine sums per-shard
/// deltas in shard-index order and flushes here, so both engines report
/// through the same instruments (names are registered once, in this module).
#[derive(Default)]
pub(crate) struct RunFlush {
    pub(crate) events: u64,
    pub(crate) msgs: u64,
    pub(crate) bytes: u64,
    pub(crate) conns: u64,
    pub(crate) pool_hits: u64,
    pub(crate) pool_misses: u64,
    pub(crate) pool_recycled: u64,
    pub(crate) timer_sweeps: u64,
    pub(crate) queue_depth: u64,
    pub(crate) enter_ns: u64,
    pub(crate) exit_ns: u64,
    pub(crate) processed: u64,
}

pub(crate) fn flush_run_telemetry(f: &RunFlush, hist: &mut telemetry::hist::LogHistogram) {
    if !hist.is_empty() {
        T_MSG_BYTES.merge_from(&std::mem::take(hist));
    }
    T_EVENTS.add(f.events);
    T_MSGS.add(f.msgs);
    T_BYTES.add(f.bytes);
    T_CONNS.add(f.conns);
    T_POOL_HITS.add(f.pool_hits);
    T_POOL_MISSES.add(f.pool_misses);
    T_POOL_RECYCLED.add(f.pool_recycled);
    T_TIMER_SWEEPS.add(f.timer_sweeps);
    T_QUEUE_DEPTH.set(f.queue_depth);
    T_RUN.record_events(f.enter_ns, f.exit_ns, f.processed);
}

/// Everything in the simulator except the node objects themselves; nodes are
/// taken out of their slot during dispatch so [`Ctx`] can borrow this core
/// mutably without aliasing the node.
pub(crate) struct SimCore {
    pub(crate) now: SimTime,
    pub(crate) rng: StdRng,
    pub(crate) queue: EventQueue,
    pub(crate) cfg: TransportCfg,
    pub(crate) next_timer_id: u64,
    // bento-lint: allow(BL001) -- membership-only (insert/remove/contains/retain
    // against an ordered id list); never iterated, so hash order cannot reach
    // the event stream, and it sits on the per-cell hot path.
    pub(crate) cancelled_timers: HashSet<u64>,
    /// Timer events still sitting in the queue (fired or cancelled); lets
    /// [`Ctx::cancel_timer`] bound the tombstone set cheaply.
    pub(crate) pending_timers: usize,
    pub(crate) pool: BufPool,
    /// Tombstone sweeps performed by [`Ctx::cancel_timer`]; flushed to
    /// telemetry by `run_until`.
    pub(crate) timer_sweeps: u64,
    /// Delivered-message sizes batched locally this run; `run_until` folds
    /// the whole histogram into `simnet.msg_bytes` in one registry access
    /// instead of one per message.
    msg_bytes: telemetry::hist::LogHistogram,
    /// Cached `mode() >= Full` for the current `run_until` pass, so the
    /// per-message record is a plain branch.
    hist_full: bool,
    ifaces: Vec<Iface>,
    names: Vec<String>,
    conns: Vec<Conn>,
    active_up: Vec<u32>,
    active_down: Vec<u32>,
    sniffers: Vec<Option<Sniffer>>,
    stats: SimStats,
    /// Fault plane. `faults_active` stays `false` until a plan (or manual
    /// fault) is installed; while false, no fault check runs and *no RNG
    /// draw happens*, so fault-free runs consume exactly the pre-fault-plane
    /// event and RNG streams.
    faults_active: bool,
    crashed: Vec<bool>,
    /// Bumped on every restart; timers carry the incarnation they were armed
    /// under and are dropped if it no longer matches.
    incarnation: Vec<u32>,
    /// Per-pair link faults, keyed by the normalized (low, high) node pair.
    /// BTreeMap: deterministic iteration, no hash-order hazards.
    link_faults: BTreeMap<(u32, u32), LinkFault>,
    /// Default fault applied to pairs with no dedicated entry.
    global_fault: LinkFault,
    /// When partitioned: `true` for nodes inside the cut group.
    partition: Option<Vec<bool>>,
    fault_stats: FaultStats,
}

impl SimCore {
    pub(crate) fn incarnation_of(&self, node: NodeId) -> u32 {
        self.incarnation.get(node.0 as usize).copied().unwrap_or(0)
    }

    fn pair_key(a: NodeId, b: NodeId) -> (u32, u32) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    fn effective_fault(&self, a: NodeId, b: NodeId) -> LinkFault {
        if a == b {
            // Loopback never leaves the host; link faults don't apply.
            return LinkFault::default();
        }
        self.link_faults
            .get(&Self::pair_key(a, b))
            .copied()
            .unwrap_or(self.global_fault)
    }

    /// Is the `a`–`b` pair severed by the current partition?
    fn cut(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            Some(side) => {
                a != b
                    && side.get(a.0 as usize).copied().unwrap_or(false)
                        != side.get(b.0 as usize).copied().unwrap_or(false)
            }
            None => false,
        }
    }

    fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// Nothing at all can cross between `a` and `b` right now.
    fn path_blocked(&self, a: NodeId, b: NodeId) -> bool {
        self.is_crashed(a)
            || self.is_crashed(b)
            || self.cut(a, b)
            || self.effective_fault(a, b).down
    }

    fn one_way(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            self.cfg.loopback_rtt / 2
        } else {
            self.ifaces[a.0 as usize].latency + self.ifaces[b.0 as usize].latency
        }
    }

    fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            self.cfg.loopback_rtt
        } else {
            self.one_way(a, b) * 2
        }
    }

    pub(crate) fn connect(&mut self, src: NodeId, dst: NodeId, port: u16) -> ConnId {
        let id = ConnId(self.conns.len() as u64);
        self.conns.push(Conn {
            a: src,
            b: dst,
            port,
            dirs: [DirState::new(&self.cfg), DirState::new(&self.cfg)],
            dead: false,
        });
        self.stats.conns_opened += 1;
        let one_way = self.one_way(src, dst);
        let rtt = self.rtt(src, dst);
        if self.faults_active && self.path_blocked(src, dst) {
            // Connection refused: the conn is born dead and the initiator
            // hears about it after a round trip, like a reset.
            self.conns[id.0 as usize].dead = true;
            self.fault_stats.conns_refused += 1;
            self.queue.push(
                self.now + rtt,
                EventKind::PeerGone {
                    conn: id,
                    node: src,
                },
            );
            return id;
        }
        self.queue
            .push(self.now + one_way, EventKind::ConnSynArrive { conn: id });
        self.queue
            .push(self.now + rtt, EventKind::ConnEstablished { conn: id });
        id
    }

    pub(crate) fn peer_of(&self, me: NodeId, conn: ConnId) -> Option<NodeId> {
        let c = self.conns.get(conn.0 as usize)?;
        if c.a == me {
            Some(c.b)
        } else if c.b == me {
            Some(c.a)
        } else {
            None
        }
    }

    pub(crate) fn send(&mut self, me: NodeId, conn: ConnId, msg: Vec<u8>) -> bool {
        let Some(c) = self.conns.get_mut(conn.0 as usize) else {
            return false;
        };
        if c.dead {
            return false;
        }
        let dir = if c.a == me {
            FlowDir::Forward
        } else if c.b == me {
            FlowDir::Backward
        } else {
            return false;
        };
        let d = &mut c.dirs[Conn::dir_index(dir)];
        if d.closing {
            return false;
        }
        d.queue.push_back(msg);
        self.kick(conn, dir);
        true
    }

    pub(crate) fn close(&mut self, me: NodeId, conn: ConnId) {
        let Some(c) = self.conns.get_mut(conn.0 as usize) else {
            return;
        };
        if c.dead {
            return;
        }
        let dir = if c.a == me {
            FlowDir::Forward
        } else if c.b == me {
            FlowDir::Backward
        } else {
            return;
        };
        c.dirs[Conn::dir_index(dir)].closing = true;
        self.maybe_send_close(conn, dir);
    }

    fn maybe_send_close(&mut self, conn: ConnId, dir: FlowDir) {
        let one_way;
        {
            let c = &mut self.conns[conn.0 as usize];
            let d = &mut c.dirs[Conn::dir_index(dir)];
            if !d.closing || d.close_sent || d.busy || !d.queue.is_empty() || !d.ready {
                return;
            }
            d.close_sent = true;
            one_way = if c.a == c.b {
                self.cfg.loopback_rtt / 2
            } else {
                self.ifaces[c.a.0 as usize].latency + self.ifaces[c.b.0 as usize].latency
            };
        }
        self.queue
            .push(self.now + one_way, EventKind::CloseArrive { conn, dir });
    }

    /// Start serializing the next chunk on `dir` of `conn`, if there is data,
    /// the direction is ready, and no chunk is already in flight.
    fn kick(&mut self, conn: ConnId, dir: FlowDir) {
        let (sender, receiver, loopback, rtt);
        let chunk;
        {
            let c = &mut self.conns[conn.0 as usize];
            if c.dead {
                return;
            }
            sender = c.sender(dir);
            receiver = c.receiver(dir);
            loopback = sender == receiver;
            let di = Conn::dir_index(dir);
            let d = &mut c.dirs[di];
            if !d.ready || d.busy || d.queue.is_empty() {
                return;
            }
            // Pack the serialization quantum: the front message's remainder,
            // then as many *whole* queued messages as still fit. Small
            // messages (relay cells) thus finish serializing together and
            // arrive together — the same-instant delivery batches the
            // batched relay data plane drains per dispatch.
            let overhead = self.cfg.per_msg_overhead as u64;
            let front_total = d.queue.front().map(|m| m.len() as u64).unwrap_or(0) + overhead;
            let mut total = front_total.saturating_sub(d.front_sent);
            for m in d.queue.iter().skip(1) {
                let need = m.len() as u64 + overhead;
                if total + need > self.cfg.chunk as u64 {
                    break;
                }
                total += need;
            }
            chunk = total.min(self.cfg.chunk as u64) as u32;
            d.busy = true;
            d.inflight_chunk = chunk;
        }
        rtt = self.rtt(sender, receiver);
        let rate = if loopback {
            let c = &self.conns[conn.0 as usize];
            let d = &c.dirs[Conn::dir_index(dir)];
            d.cwnd.rate(rtt).min(self.cfg.loopback_bps)
        } else {
            self.active_up[sender.0 as usize] += 1;
            self.active_down[receiver.0 as usize] += 1;
            let up =
                self.ifaces[sender.0 as usize].up_share(self.active_up[sender.0 as usize] as usize);
            let down = self.ifaces[receiver.0 as usize]
                .down_share(self.active_down[receiver.0 as usize] as usize);
            let c = &self.conns[conn.0 as usize];
            let d = &c.dirs[Conn::dir_index(dir)];
            d.cwnd.rate(rtt).min(up).min(down)
        };
        let dur = SimDuration::for_bytes(chunk as u64, rate);
        self.queue
            .push(self.now + dur, EventKind::ChunkDone { conn, dir });
    }

    /// A chunk finished serializing: grow the window, maybe complete a
    /// message, keep the pipeline moving.
    fn on_chunk_done(&mut self, conn: ConnId, dir: FlowDir) {
        let (sender, receiver, loopback);
        // The common chunk covers exactly one message; keep that case
        // allocation-free and only spill to a Vec when packing completed
        // several at once.
        let mut first_done: Option<Vec<u8>> = None;
        let mut rest_done: Vec<Vec<u8>> = Vec::new();
        {
            let c = &mut self.conns[conn.0 as usize];
            sender = c.sender(dir);
            receiver = c.receiver(dir);
            loopback = sender == receiver;
            let d = &mut c.dirs[Conn::dir_index(dir)];
            let chunk = d.inflight_chunk;
            d.busy = false;
            d.inflight_chunk = 0;
            d.cwnd.on_acked(chunk);
            d.front_sent += chunk as u64;
            // Drain every message the packed chunk covered, in queue order.
            // Messages queued after the chunk was sized stay for the next
            // kick; a large message spanning chunks completes when its last
            // chunk lands.
            while let Some(front_total) = d
                .queue
                .front()
                .map(|m| m.len() as u64 + self.cfg.per_msg_overhead as u64)
            {
                if d.front_sent < front_total {
                    break;
                }
                d.front_sent -= front_total;
                let m = d.queue.pop_front().expect("front exists");
                if first_done.is_none() {
                    first_done = Some(m);
                } else {
                    rest_done.push(m);
                }
            }
            if d.queue.is_empty() {
                d.front_sent = 0;
            }
        }
        if !loopback {
            let su = &mut self.active_up[sender.0 as usize];
            *su = su.saturating_sub(1);
            let rd = &mut self.active_down[receiver.0 as usize];
            *rd = rd.saturating_sub(1);
        }
        for mut msg in first_done.into_iter().chain(rest_done) {
            // The whole message is on the wire: the sender-side sniffer sees
            // it now; it arrives one propagation delay later. Messages that
            // shared a chunk arrive at the same instant, back to back in the
            // event queue — the coalesced delivery path picks them up.
            if let Some(s) = self.sniffers[sender.0 as usize].as_mut() {
                s.record(TraceEvent {
                    time: self.now,
                    dir: Direction::Outgoing,
                    bytes: msg.len() as u32,
                    conn,
                    peer: receiver,
                });
            }
            let mut one_way = self.one_way(sender, receiver);
            let mut dropped = false;
            if self.faults_active {
                // Wire-entry fault point: everything a hostile network can do
                // to a message happens here, off the shared seeded RNG — and
                // only while a fault is in force, so healthy traffic draws
                // nothing.
                let f = self.effective_fault(sender, receiver);
                if self.path_blocked(sender, receiver)
                    || (f.loss_ppm > 0 && self.rng.gen_range(0..1_000_000u32) < f.loss_ppm)
                {
                    dropped = true;
                } else {
                    if f.corrupt_ppm > 0
                        && !msg.is_empty()
                        && self.rng.gen_range(0..1_000_000u32) < f.corrupt_ppm
                    {
                        let i = self.rng.gen_range(0..msg.len());
                        msg[i] ^= 0x55;
                        self.fault_stats.msgs_corrupted += 1;
                    }
                    one_way += f.extra_latency;
                }
            }
            if dropped {
                self.fault_stats.msgs_dropped += 1;
                self.pool.put(msg);
            } else {
                self.queue
                    .push(self.now + one_way, EventKind::MsgArrive { conn, dir, msg });
            }
        }
        self.kick(conn, dir);
        self.maybe_send_close(conn, dir);
    }
}

/// The classic serial discrete-event engine: one queue, one clock, one RNG.
pub(crate) struct SerialSim {
    core: SimCore,
    nodes: Vec<Option<Box<dyn Node>>>,
    /// Nodes with index < started_upto have had on_start called. Nodes
    /// added after the simulation begins are started on the next run call.
    started_upto: usize,
}

impl SerialSim {
    /// Create a serial engine with the given configuration.
    fn new(cfg: SimConfig) -> Self {
        SerialSim {
            core: SimCore {
                now: SimTime::ZERO,
                rng: StdRng::seed_from_u64(cfg.seed),
                queue: EventQueue::new(),
                cfg: cfg.transport,
                next_timer_id: 0,
                // bento-lint: allow(BL001) -- see field declaration: membership-only set
                cancelled_timers: HashSet::new(),
                pending_timers: 0,
                pool: BufPool::default(),
                timer_sweeps: 0,
                ifaces: Vec::new(),
                names: Vec::new(),
                conns: Vec::new(),
                active_up: Vec::new(),
                active_down: Vec::new(),
                sniffers: Vec::new(),
                stats: SimStats::default(),
                msg_bytes: telemetry::hist::LogHistogram::new(),
                hist_full: false,
                faults_active: false,
                crashed: Vec::new(),
                incarnation: Vec::new(),
                link_faults: BTreeMap::new(),
                global_fault: LinkFault::default(),
                partition: None,
                fault_stats: FaultStats::default(),
            },
            nodes: Vec::new(),
            started_upto: 0,
        }
    }

    /// Add a node with the given access interface. Nodes cannot be removed.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        iface: Iface,
        node: Box<dyn Node>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.core.ifaces.push(iface);
        self.core.names.push(name.into());
        self.core.active_up.push(0);
        self.core.active_down.push(0);
        self.core.sniffers.push(None);
        self.core.crashed.push(false);
        self.core.incarnation.push(0);
        id
    }

    /// Begin recording a directional trace of `node`'s access link.
    pub fn enable_sniffer(&mut self, node: NodeId) {
        self.core.sniffers[node.0 as usize] = Some(Sniffer::new());
    }

    /// The trace recorded so far on `node`'s link (panics if no sniffer).
    pub fn sniffer(&self, node: NodeId) -> &Sniffer {
        self.core.sniffers[node.0 as usize]
            .as_ref()
            .expect("sniffer not enabled on this node")
    }

    /// Mutable access to `node`'s sniffer, e.g. to clear it between trials.
    pub fn sniffer_mut(&mut self, node: NodeId) -> &mut Sniffer {
        self.core.sniffers[node.0 as usize]
            .as_mut()
            .expect("sniffer not enabled on this node")
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Aggregate run statistics.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }

    /// The display name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.core.names[id.0 as usize]
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// If `id` does not refer to a `T`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Run a closure against a node with a [`Ctx`], e.g. to start a workload
    /// from the experiment harness.
    ///
    /// # Panics
    /// If `id` does not refer to a `T`.
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut node = self.nodes[id.0 as usize]
            .take()
            .expect("node is being dispatched");
        let mut ctx = Ctx {
            inner: CtxInner::Serial(&mut self.core),
            me: id,
        };
        let r = f(
            node.as_any_mut()
                .downcast_mut::<T>()
                .expect("node type mismatch"),
            &mut ctx,
        );
        self.nodes[id.0 as usize] = Some(node);
        r
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        if self.core.is_crashed(id) {
            // A crashed host runs no code. Whatever event reached it is lost.
            return;
        }
        let mut node = self.nodes[id.0 as usize]
            .take()
            .expect("node reentrancy during dispatch");
        let mut ctx = Ctx {
            inner: CtxInner::Serial(&mut self.core),
            me: id,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.0 as usize] = Some(node);
    }

    fn ensure_started(&mut self) {
        while self.started_upto < self.nodes.len() {
            let i = self.started_upto;
            self.started_upto += 1;
            self.dispatch(NodeId(i as u32), |n, ctx| n.on_start(ctx));
        }
    }

    /// Process events until the queue is empty or `limit` is reached; the
    /// clock ends at `min(limit, time of last event)`. Returns the number of
    /// events processed.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        self.ensure_started();
        self.core.hist_full = telemetry::mode() >= telemetry::Mode::Full;
        let enter_ns = self.core.now.as_nanos();
        let before = self.core.stats;
        let pool_before = (
            self.core.pool.hits,
            self.core.pool.misses,
            self.core.pool.recycled,
        );
        let sweeps_before = self.core.timer_sweeps;
        let faults_before = self.core.fault_stats;
        let mut max_depth = self.core.queue.len();
        let mut processed = 0;
        while let Some(t) = self.core.queue.peek_time() {
            if t > limit {
                break;
            }
            let depth = self.core.queue.len();
            if depth > max_depth {
                max_depth = depth;
            }
            let ev = self.core.queue.pop().expect("peeked event vanished");
            self.core.now = ev.time;
            self.core.stats.events += 1;
            processed += 1;
            match ev.kind {
                // Coalesce an adjacent run of same-instant arrivals on one
                // connection and direction into a single delivery batch (see
                // [`Node::on_msgs`]). The guard keeps the common solitary
                // arrival on the plain path with just one extra heap peek.
                EventKind::MsgArrive { conn, dir, msg }
                    if self.core.queue.peek_is_arrival(ev.time, conn, dir) =>
                {
                    let mut batch = vec![msg];
                    while self.core.queue.peek_is_arrival(ev.time, conn, dir) {
                        let next = self.core.queue.pop().expect("peeked event vanished");
                        self.core.stats.events += 1;
                        processed += 1;
                        if let EventKind::MsgArrive { msg, .. } = next.kind {
                            batch.push(msg);
                        }
                    }
                    self.handle_msg_batch(conn, dir, batch);
                }
                kind => self.handle(kind),
            }
        }
        if self.core.now < limit {
            self.core.now = limit;
        }
        // Flush this run's deltas to telemetry in one shot; the loop above
        // only touched plain fields. Nodes batching their own counters
        // (relays) flush here too.
        for node in self.nodes.iter_mut().flatten() {
            node.flush_telemetry();
        }
        if !self.core.msg_bytes.is_empty() {
            T_MSG_BYTES.merge_from(&std::mem::take(&mut self.core.msg_bytes));
        }
        let after = self.core.stats;
        T_EVENTS.add(after.events - before.events);
        T_MSGS.add(after.msgs_delivered - before.msgs_delivered);
        T_BYTES.add(after.bytes_delivered - before.bytes_delivered);
        T_CONNS.add(after.conns_opened - before.conns_opened);
        T_POOL_HITS.add(self.core.pool.hits - pool_before.0);
        T_POOL_MISSES.add(self.core.pool.misses - pool_before.1);
        T_POOL_RECYCLED.add(self.core.pool.recycled - pool_before.2);
        T_TIMER_SWEEPS.add(self.core.timer_sweeps - sweeps_before);
        if self.core.faults_active {
            let fa = self.core.fault_stats;
            T_FAULT_CRASHES.add(fa.crashes - faults_before.crashes);
            T_FAULT_RESTARTS.add(fa.restarts - faults_before.restarts);
            T_FAULT_DROPPED.add(fa.msgs_dropped - faults_before.msgs_dropped);
            T_FAULT_CORRUPTED.add(fa.msgs_corrupted - faults_before.msgs_corrupted);
            T_FAULT_REFUSED.add(fa.conns_refused - faults_before.conns_refused);
        }
        T_QUEUE_DEPTH.set(max_depth as u64);
        T_RUN.record_events(enter_ns, self.core.now.as_nanos(), processed);
        processed
    }

    /// Deliver a coalesced run (≥ 2) of same-instant messages on one
    /// connection and direction. Per-message accounting matches the
    /// sequential path exactly. The dead/fault checks run once for the
    /// whole run, which is equivalent: every message in the run had been
    /// popped before any receiver code ran, so no dispatch could have
    /// changed connection or fault state between them.
    fn handle_msg_batch(&mut self, conn: ConnId, dir: FlowDir, msgs: Vec<Vec<u8>>) {
        let (dead, receiver, sender) = {
            let c = &self.core.conns[conn.0 as usize];
            (c.dead, c.receiver(dir), c.sender(dir))
        };
        if dead {
            return;
        }
        if self.core.faults_active && self.core.path_blocked(sender, receiver) {
            // In flight when the cut (or crash, or link kill) happened: the
            // whole run dies on the wire.
            self.core.fault_stats.msgs_dropped += msgs.len() as u64;
            for msg in msgs {
                self.core.pool.put(msg);
            }
            return;
        }
        self.core.stats.msgs_delivered += msgs.len() as u64;
        for msg in &msgs {
            self.core.stats.bytes_delivered += msg.len() as u64;
            if self.core.hist_full {
                self.core.msg_bytes.record(msg.len() as u64);
            }
            if let Some(s) = self.core.sniffers[receiver.0 as usize].as_mut() {
                s.record(TraceEvent {
                    time: self.core.now,
                    dir: Direction::Incoming,
                    bytes: msg.len() as u32,
                    conn,
                    peer: sender,
                });
            }
        }
        self.dispatch(receiver, |n, ctx| n.on_msgs(ctx, conn, msgs));
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::ConnSynArrive { conn } => {
                let (dead, b, a, port) = {
                    let c = &self.core.conns[conn.0 as usize];
                    (c.dead, c.b, c.a, c.port)
                };
                if dead {
                    return;
                }
                self.core.conns[conn.0 as usize].dirs[1].ready = true;
                self.core.kick(conn, FlowDir::Backward);
                self.core.maybe_send_close(conn, FlowDir::Backward);
                self.dispatch(b, |n, ctx| n.on_conn_open(ctx, conn, a, port));
            }
            EventKind::ConnEstablished { conn } => {
                let (dead, a, b) = {
                    let c = &self.core.conns[conn.0 as usize];
                    (c.dead, c.a, c.b)
                };
                if dead {
                    return;
                }
                self.core.conns[conn.0 as usize].dirs[0].ready = true;
                self.core.kick(conn, FlowDir::Forward);
                self.core.maybe_send_close(conn, FlowDir::Forward);
                self.dispatch(a, |n, ctx| n.on_conn_established(ctx, conn, b));
            }
            EventKind::ChunkDone { conn, dir } => {
                self.core.on_chunk_done(conn, dir);
            }
            EventKind::MsgArrive { conn, dir, msg } => {
                let (dead, receiver, sender) = {
                    let c = &self.core.conns[conn.0 as usize];
                    (c.dead, c.receiver(dir), c.sender(dir))
                };
                if dead {
                    return;
                }
                if self.core.faults_active && self.core.path_blocked(sender, receiver) {
                    // In flight when the cut (or crash, or link kill)
                    // happened: the message dies on the wire.
                    self.core.fault_stats.msgs_dropped += 1;
                    self.core.pool.put(msg);
                    return;
                }
                self.core.stats.msgs_delivered += 1;
                self.core.stats.bytes_delivered += msg.len() as u64;
                if self.core.hist_full {
                    self.core.msg_bytes.record(msg.len() as u64);
                }
                if let Some(s) = self.core.sniffers[receiver.0 as usize].as_mut() {
                    s.record(TraceEvent {
                        time: self.core.now,
                        dir: Direction::Incoming,
                        bytes: msg.len() as u32,
                        conn,
                        peer: sender,
                    });
                }
                self.dispatch(receiver, |n, ctx| n.on_msg(ctx, conn, msg));
            }
            EventKind::CloseArrive { conn, dir } => {
                let receiver = {
                    let c = &mut self.core.conns[conn.0 as usize];
                    if c.dead {
                        return;
                    }
                    c.dead = true;
                    c.receiver(dir)
                };
                self.dispatch(receiver, |n, ctx| n.on_conn_closed(ctx, conn));
            }
            EventKind::Timer { node, id, tag, inc } => {
                self.core.pending_timers = self.core.pending_timers.saturating_sub(1);
                if self.core.cancelled_timers.remove(&id) {
                    return;
                }
                // Timers armed by a previous incarnation (or while the node
                // is down) died with the process.
                if self.core.faults_active
                    && (self.core.is_crashed(node) || inc != self.core.incarnation_of(node))
                {
                    return;
                }
                self.dispatch(node, |n, ctx| n.on_timer(ctx, tag));
            }
            EventKind::PeerGone { conn, node } => {
                self.dispatch(node, |n, ctx| n.on_conn_closed(ctx, conn));
            }
            EventKind::Fault { action } => {
                self.apply_fault(action);
            }
        }
    }

    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::Crash(node) => self.apply_crash(node),
            FaultAction::Restart(node) => self.apply_restart(node),
            FaultAction::Link { a, b, fault } => {
                let key = SimCore::pair_key(a, b);
                if fault.is_clear() {
                    self.core.link_faults.remove(&key);
                } else {
                    self.core.link_faults.insert(key, fault);
                }
            }
            FaultAction::AllLinks { fault } => {
                self.core.global_fault = fault;
            }
            FaultAction::Partition { group } => {
                let mut side = vec![false; self.nodes.len()];
                for n in group {
                    if let Some(s) = side.get_mut(n.0 as usize) {
                        *s = true;
                    }
                }
                self.core.partition = Some(side);
            }
            FaultAction::Heal => {
                self.core.partition = None;
            }
        }
    }

    fn apply_crash(&mut self, node: NodeId) {
        let i = node.0 as usize;
        if i >= self.nodes.len() || self.core.crashed[i] {
            return;
        }
        self.core.crashed[i] = true;
        self.core.fault_stats.crashes += 1;
        // Every connection touching the node dies instantly on the node's
        // side; the surviving peer learns one propagation delay later, like
        // a reset. In-flight chunks still release their fair-share slots
        // when their ChunkDone events fire (on_chunk_done decrements
        // unconditionally), and pending MsgArrive/CloseArrive events see the
        // dead conn and drop.
        let mut notices: Vec<(ConnId, NodeId)> = Vec::new();
        for (ci, c) in self.core.conns.iter_mut().enumerate() {
            if c.dead || (c.a != node && c.b != node) {
                continue;
            }
            c.dead = true;
            let peer = if c.a == node { c.b } else { c.a };
            if peer != node {
                notices.push((ConnId(ci as u64), peer));
            }
        }
        for (conn, peer) in notices {
            if self.core.is_crashed(peer) {
                continue;
            }
            let delay = self.core.one_way(node, peer);
            self.core.queue.push(
                self.core.now + delay,
                EventKind::PeerGone { conn, node: peer },
            );
        }
        // Volatile state dies with the process. No Ctx: a dead host cannot
        // act on the network.
        if let Some(n) = self.nodes[i].as_mut() {
            n.on_crash();
        }
    }

    fn apply_restart(&mut self, node: NodeId) {
        let i = node.0 as usize;
        if i >= self.nodes.len() || !self.core.crashed[i] {
            return;
        }
        self.core.crashed[i] = false;
        self.core.incarnation[i] += 1;
        self.core.fault_stats.restarts += 1;
        self.dispatch(node, |n, ctx| n.on_restart(ctx));
    }

    /// Install a fault plan: each action is scheduled into the event queue at
    /// its absolute time, interleaved deterministically with regular traffic.
    /// Installing any (non-empty) plan switches the fault plane on for the
    /// rest of the run.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        if plan.entries.is_empty() {
            return;
        }
        self.core.faults_active = true;
        for (at, action) in plan.entries {
            self.core.queue.push(at, EventKind::Fault { action });
        }
    }

    /// Schedule a single fault action at an absolute time (same effect as a
    /// one-entry [`FaultPlan`]).
    pub fn inject_fault(&mut self, at: SimTime, action: FaultAction) {
        self.core.faults_active = true;
        self.core.queue.push(at, EventKind::Fault { action });
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.core.is_crashed(node)
    }

    /// Counters of faults applied so far this run.
    pub fn fault_stats(&self) -> FaultStats {
        self.core.fault_stats
    }

    /// The node's current (uplink, downlink) active-flow slot counts — test
    /// hook for asserting crash cleanup leaves no dangling fair-share slots.
    pub fn active_link_slots(&self, node: NodeId) -> (u32, u32) {
        (
            self.core.active_up[node.0 as usize],
            self.core.active_down[node.0 as usize],
        )
    }
}

/// Which engine a [`Simulator`] runs on. The serial engine is boxed: it is
/// an order of magnitude larger than the sharded handle, and one allocation
/// per simulator keeps the facade thin for both.
enum Engine {
    Serial(Box<SerialSim>),
    Sharded(ShardedSim),
}

/// The discrete-event simulator. See the crate docs for the model.
///
/// A facade over two engines sharing the same [`Node`]/[`Ctx`] contract:
///
/// * the **serial** engine (default, `SimConfig::shards == 0`) — one event
///   loop, one clock, one RNG; byte-compatible with every artifact produced
///   before the sharded engine existed;
/// * the **sharded** engine (`SimConfig::shards >= 1`, [`crate::shard`]) —
///   conservative parallel discrete-event simulation whose results are
///   byte-identical at any shard count and any worker-thread count.
///
/// The fault plane ([`Simulator::install_faults`] etc.) is serial-only for
/// now; chaos workloads keep running on the serial engine.
pub struct Simulator {
    engine: Engine,
}

impl Simulator {
    /// Create a simulator with the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let engine = if cfg.shards >= 1 {
            Engine::Sharded(ShardedSim::new(&cfg))
        } else {
            Engine::Serial(Box::new(SerialSim::new(cfg)))
        };
        Simulator { engine }
    }

    /// Create a serial-engine simulator with default config and the given
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        Simulator::new(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    /// Create a sharded-engine simulator with default config, the given seed
    /// and shard count (`shards >= 1`; worker threads default to one per
    /// core).
    pub fn with_seed_shards(seed: u64, shards: usize) -> Self {
        Simulator::new(SimConfig {
            seed,
            shards: shards.max(1),
            ..SimConfig::default()
        })
    }

    /// Number of shards the engine partitions nodes into (1 for the serial
    /// engine).
    pub fn shard_count(&self) -> usize {
        match &self.engine {
            Engine::Serial(_) => 1,
            Engine::Sharded(s) => s.shard_count(),
        }
    }

    /// Add a node with the given access interface. Nodes cannot be removed.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        iface: Iface,
        node: Box<dyn Node>,
    ) -> NodeId {
        match &mut self.engine {
            Engine::Serial(s) => s.add_node(name, iface, node),
            Engine::Sharded(s) => s.add_node(name.into(), iface, node),
        }
    }

    /// Begin recording a directional trace of `node`'s access link.
    pub fn enable_sniffer(&mut self, node: NodeId) {
        match &mut self.engine {
            Engine::Serial(s) => s.enable_sniffer(node),
            Engine::Sharded(s) => s.enable_sniffer(node),
        }
    }

    /// The trace recorded so far on `node`'s link (panics if no sniffer).
    pub fn sniffer(&self, node: NodeId) -> &Sniffer {
        match &self.engine {
            Engine::Serial(s) => s.sniffer(node),
            Engine::Sharded(s) => s.sniffer(node),
        }
    }

    /// Mutable access to `node`'s sniffer, e.g. to clear it between trials.
    pub fn sniffer_mut(&mut self, node: NodeId) -> &mut Sniffer {
        match &mut self.engine {
            Engine::Serial(s) => s.sniffer_mut(node),
            Engine::Sharded(s) => s.sniffer_mut(node),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.engine {
            Engine::Serial(s) => s.now(),
            Engine::Sharded(s) => s.now(),
        }
    }

    /// Aggregate run statistics (summed over shards in shard-index order on
    /// the sharded engine).
    pub fn stats(&self) -> SimStats {
        match &self.engine {
            Engine::Serial(s) => s.stats(),
            Engine::Sharded(s) => s.stats(),
        }
    }

    /// The display name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        match &self.engine {
            Engine::Serial(s) => s.node_name(id),
            Engine::Sharded(s) => s.node_name(id),
        }
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// If `id` does not refer to a `T`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        match &self.engine {
            Engine::Serial(s) => s.node_ref(id),
            Engine::Sharded(s) => s.node_ref(id),
        }
    }

    /// Run a closure against a node with a [`Ctx`], e.g. to start a workload
    /// from the experiment harness.
    ///
    /// # Panics
    /// If `id` does not refer to a `T`.
    pub fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        match &mut self.engine {
            Engine::Serial(s) => s.with_node(id, f),
            Engine::Sharded(s) => s.with_node(id, f),
        }
    }

    /// Process events until the queue is empty or `limit` is reached; the
    /// clock ends at `min(limit, time of last event)`. Returns the number of
    /// events processed.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        match &mut self.engine {
            Engine::Serial(s) => s.run_until(limit),
            Engine::Sharded(s) => s.run_until(limit),
        }
    }

    /// Run until no events remain (the simulation quiesces).
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Install a fault plan: each action is scheduled into the event queue at
    /// its absolute time, interleaved deterministically with regular traffic.
    /// Installing any (non-empty) plan switches the fault plane on for the
    /// rest of the run.
    ///
    /// # Panics
    /// On the sharded engine — the fault plane is serial-only for now.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        if plan.entries.is_empty() {
            return;
        }
        match &mut self.engine {
            Engine::Serial(s) => s.install_faults(plan),
            Engine::Sharded(_) => panic!(
                "the fault plane is not supported on the sharded engine yet; \
                 run chaos workloads with shards = 0 (see DESIGN.md §12)"
            ),
        }
    }

    /// Schedule a single fault action at an absolute time (same effect as a
    /// one-entry [`FaultPlan`]).
    ///
    /// # Panics
    /// On the sharded engine — the fault plane is serial-only for now.
    pub fn inject_fault(&mut self, at: SimTime, action: FaultAction) {
        match &mut self.engine {
            Engine::Serial(s) => s.inject_fault(at, action),
            Engine::Sharded(_) => panic!(
                "the fault plane is not supported on the sharded engine yet; \
                 run chaos workloads with shards = 0 (see DESIGN.md §12)"
            ),
        }
    }

    /// Is `node` currently crashed? (Always `false` on the sharded engine,
    /// which has no fault plane.)
    pub fn is_crashed(&self, node: NodeId) -> bool {
        match &self.engine {
            Engine::Serial(s) => s.is_crashed(node),
            Engine::Sharded(_) => false,
        }
    }

    /// Counters of faults applied so far this run.
    pub fn fault_stats(&self) -> FaultStats {
        match &self.engine {
            Engine::Serial(s) => s.fault_stats(),
            Engine::Sharded(_) => FaultStats::default(),
        }
    }

    /// The node's current (uplink, downlink) active-flow slot counts — test
    /// hook for asserting crash cleanup leaves no dangling fair-share slots.
    /// The sharded engine has no downlink slot (its ingress pipe replaces
    /// receiver fair sharing) and reports 0 there.
    pub fn active_link_slots(&self, node: NodeId) -> (u32, u32) {
        match &self.engine {
            Engine::Serial(s) => s.active_link_slots(node),
            Engine::Sharded(s) => s.active_link_slots(node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every message back on the same connection.
    struct Echo;
    impl Node for Echo {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
            ctx.send(conn, msg);
        }
    }

    /// Connects to a peer at start, sends one message, records the reply time.
    struct Pinger {
        target: NodeId,
        payload: usize,
        reply_at: Option<SimTime>,
        replies: u32,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let c = ctx.connect(self.target, 80);
            ctx.send(c, vec![0u8; self.payload]);
        }
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {
            self.reply_at = Some(ctx.now());
            self.replies += 1;
        }
    }

    fn two_node_sim(payload: usize, iface: Iface) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::with_seed(1);
        let echo = sim.add_node("echo", iface, Box::new(Echo));
        let ping = sim.add_node(
            "ping",
            iface,
            Box::new(Pinger {
                target: echo,
                payload,
                reply_at: None,
                replies: 0,
            }),
        );
        (sim, ping, echo)
    }

    #[test]
    fn small_message_rtt_is_handshake_plus_roundtrip() {
        let iface = Iface::symmetric(SimDuration::from_millis(10), 0);
        let (mut sim, ping, _) = two_node_sim(64, iface);
        sim.run_to_quiescence();
        let p: &Pinger = sim.node_ref(ping);
        let t = p.reply_at.expect("reply received");
        // handshake 1 RTT (40ms) + request one-way (20ms) + reply one-way (20ms)
        assert_eq!(t.as_millis(), 80);
    }

    #[test]
    fn bulk_transfer_is_bandwidth_limited() {
        // 1 MiB payload at 1 MiB/s symmetric, near-zero latency: the echo
        // requires the payload to cross two links twice; each crossing takes
        // about a second once the window opens.
        let iface = Iface::symmetric(SimDuration::from_micros(500), 1 << 20);
        let (mut sim, ping, _) = two_node_sim(1 << 20, iface);
        sim.run_to_quiescence();
        let p: &Pinger = sim.node_ref(ping);
        let t = p.reply_at.expect("reply received").as_secs_f64();
        assert!(t > 1.8 && t < 4.0, "bulk echo took {t}s");
    }

    #[test]
    fn messages_preserve_order_and_content() {
        struct Collector {
            got: Vec<Vec<u8>>,
        }
        impl Node for Collector {
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, m: Vec<u8>) {
                self.got.push(m);
            }
        }
        struct Burst {
            target: NodeId,
        }
        impl Node for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let c = ctx.connect(self.target, 80);
                for i in 0..50u8 {
                    ctx.send(c, vec![i; (i as usize % 7) * 400 + 1]);
                }
            }
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {}
        }
        let mut sim = Simulator::with_seed(7);
        let col = sim.add_node(
            "col",
            Iface::residential(),
            Box::new(Collector { got: vec![] }),
        );
        let _snd = sim.add_node("snd", Iface::residential(), Box::new(Burst { target: col }));
        sim.run_to_quiescence();
        let c: &Collector = sim.node_ref(col);
        assert_eq!(c.got.len(), 50);
        for (i, m) in c.got.iter().enumerate() {
            assert_eq!(m[0] as usize, i);
            assert_eq!(m.len(), (i % 7) * 400 + 1);
        }
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            let iface = Iface::residential();
            let (mut sim, ping, _) = two_node_sim(100_000, iface);
            let _ = seed;
            sim.run_to_quiescence();
            let p: &Pinger = sim.node_ref(ping);
            (p.reply_at, sim.stats().events)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn sniffer_sees_both_directions() {
        let iface = Iface::symmetric(SimDuration::from_millis(5), 0);
        let mut sim = Simulator::with_seed(3);
        let echo = sim.add_node("echo", iface, Box::new(Echo));
        let ping = sim.add_node(
            "ping",
            iface,
            Box::new(Pinger {
                target: echo,
                payload: 514,
                reply_at: None,
                replies: 0,
            }),
        );
        sim.enable_sniffer(ping);
        sim.run_to_quiescence();
        let tr = sim.sniffer(ping);
        assert_eq!(tr.total_bytes(Direction::Outgoing), 514);
        assert_eq!(tr.total_bytes(Direction::Incoming), 514);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn close_notifies_peer_and_stops_traffic() {
        struct Closer {
            target: NodeId,
        }
        impl Node for Closer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let c = ctx.connect(self.target, 80);
                ctx.send(c, b"bye".to_vec());
                ctx.close(c);
            }
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {}
        }
        struct Watcher {
            got_msg: bool,
            got_close: bool,
        }
        impl Node for Watcher {
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {
                self.got_msg = true;
            }
            fn on_conn_closed(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId) {
                self.got_close = true;
            }
        }
        let mut sim = Simulator::with_seed(9);
        let w = sim.add_node(
            "w",
            Iface::residential(),
            Box::new(Watcher {
                got_msg: false,
                got_close: false,
            }),
        );
        let _c = sim.add_node("c", Iface::residential(), Box::new(Closer { target: w }));
        sim.run_to_quiescence();
        let w: &Watcher = sim.node_ref(w);
        assert!(w.got_msg, "message delivered before close");
        assert!(w.got_close, "peer observed close");
    }

    #[test]
    fn loopback_connections_are_fast() {
        let (mut sim, ping, _) = {
            let mut sim = Simulator::with_seed(4);
            // single node talking to itself
            let n = sim.add_node(
                "self",
                Iface::residential(),
                Box::new(SelfTalk { done_at: None }),
            );
            (sim, n, n)
        };
        struct SelfTalk {
            done_at: Option<SimTime>,
        }
        impl Node for SelfTalk {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.me();
                let c = ctx.connect(me, 80);
                ctx.send(c, vec![0; 10_000]);
            }
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {
                self.done_at = Some(ctx.now());
            }
        }
        sim.run_to_quiescence();
        let n: &SelfTalk = sim.node_ref(ping);
        let t = n.done_at.expect("loopback delivery");
        assert!(
            t.as_micros() < 1000,
            "loopback took {} us, expected sub-millisecond",
            t.as_micros()
        );
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Node for Timed {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let t2 = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.cancel_timer(t2);
            }
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulator::with_seed(5);
        let n = sim.add_node("t", Iface::ideal(), Box::new(Timed { fired: vec![] }));
        sim.run_to_quiescence();
        let t: &Timed = sim.node_ref(n);
        assert_eq!(t.fired, vec![1, 3]);
    }

    #[test]
    fn sharing_halves_throughput() {
        // Two bulk flows into the same receiver should take roughly twice as
        // long as one flow, because they share the receiver's downlink.
        struct Sink {
            completions: Vec<SimTime>,
        }
        impl Node for Sink {
            fn on_msg(&mut self, ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {
                self.completions.push(ctx.now());
            }
        }
        struct Source {
            target: NodeId,
        }
        impl Node for Source {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let c = ctx.connect(self.target, 80);
                ctx.send(c, vec![0; 2 << 20]);
            }
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _c: ConnId, _m: Vec<u8>) {}
        }
        let fast = Iface::symmetric(SimDuration::from_millis(2), 8 << 20);
        let slow_recv = Iface::symmetric(SimDuration::from_millis(2), 1 << 20);

        let solo_time = {
            let mut sim = Simulator::with_seed(6);
            let sink = sim.add_node(
                "sink",
                slow_recv,
                Box::new(Sink {
                    completions: vec![],
                }),
            );
            sim.add_node("s1", fast, Box::new(Source { target: sink }));
            sim.run_to_quiescence();
            sim.node_ref::<Sink>(sink).completions[0].as_secs_f64()
        };
        let duo_time = {
            let mut sim = Simulator::with_seed(6);
            let sink = sim.add_node(
                "sink",
                slow_recv,
                Box::new(Sink {
                    completions: vec![],
                }),
            );
            sim.add_node("s1", fast, Box::new(Source { target: sink }));
            sim.add_node("s2", fast, Box::new(Source { target: sink }));
            sim.run_to_quiescence();
            let s: &Sink = sim.node_ref(sink);
            s.completions
                .iter()
                .map(|t| t.as_secs_f64())
                .fold(0.0, f64::max)
        };
        assert!(
            duo_time > 1.6 * solo_time && duo_time < 2.6 * solo_time,
            "solo {solo_time}s, duo {duo_time}s"
        );
    }
}
