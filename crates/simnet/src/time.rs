//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since the start of the simulation.
//! Durations are also nanosecond counts. Both are newtypes so they cannot be
//! confused with each other or with raw integers, and both provide saturating
//! arithmetic so cost-model code never panics on overflow.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero instant — the moment the simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for plotting/reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time it takes to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// A zero rate yields [`SimDuration::ZERO`]; callers treat a zero-rate
    /// link as infinitely fast rather than dividing by zero, because the only
    /// zero-rate interfaces in this workspace are intentionally "ideal" test
    /// fixtures.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        if bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        // bytes * 1e9 / rate, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128) / bytes_per_sec as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.as_millis())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(1_500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_subtraction_saturates() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn time_add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn for_bytes_matches_rate() {
        // 1 MiB at 1 MiB/s is one second.
        let d = SimDuration::for_bytes(1 << 20, 1 << 20);
        assert_eq!(d, SimDuration::from_secs(1));
        // Zero rate is "ideal link": zero time.
        assert_eq!(SimDuration::for_bytes(1 << 20, 0), SimDuration::ZERO);
    }

    #[test]
    fn for_bytes_large_values_do_not_overflow() {
        let d = SimDuration::for_bytes(u64::MAX / 2, 1);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(1e300).as_nanos(), u64::MAX);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
