//! # simnet — deterministic discrete-event network simulator
//!
//! `simnet` is the substrate every other crate in this workspace builds on.
//! It models a set of **nodes**, each attached to the "internet core" through
//! an access interface with configurable latency and asymmetric bandwidth,
//! exchanging reliable, ordered **messages** over point-to-point connections
//! with a TCP-like cost model (handshake round trip, slow start, congestion
//! avoidance, max-min fair sharing of access links).
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** The simulator is single-threaded; every run with the
//!    same seed and the same program produces the same event trace. All
//!    randomness flows from one seeded [`rand::rngs::StdRng`].
//! 2. **Honest cost model.** We do not simulate packets; we simulate *flows*
//!    in chunks, with rates bounded by congestion window and by the fair
//!    share of the sender's uplink and receiver's downlink. This reproduces
//!    the two effects the Bento paper's evaluation depends on: RTT-dominated
//!    small transfers (slow start) and bandwidth sharing among concurrent
//!    clients of one host.
//! 3. **Observability.** Any node's access link can be *sniffed*, producing a
//!    timestamped directional trace of transmissions — exactly what a website
//!    fingerprinting adversary positioned between a client and its guard
//!    observes.
//!
//! The crate deliberately avoids an async runtime: a discrete-event core is
//! smaller, fully deterministic and trivially replayable, which matters more
//! for reproducing published experiments than wall-clock concurrency. When a
//! single topology outgrows one core, the [`shard`] module provides a second
//! engine — conservative parallel discrete-event simulation over node shards
//! with a deterministic barrier exchange — whose results are byte-identical
//! at any shard count and any worker-thread count (`SimConfig::shards`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod iface;
pub mod node;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod transport;
pub mod wire;

pub use fault::{FaultAction, FaultPlan, FaultStats, LinkFault};
pub use iface::Iface;
pub use node::{ConnId, Ctx, Node, NodeId};
pub use shard::shard_of;
pub use sim::{SimConfig, Simulator};
pub use stats::{Histogram, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use trace::{Direction, TraceEvent};
pub use transport::TransportCfg;
pub use wire::{Reader, WireError, Writer};
