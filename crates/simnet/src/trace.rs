//! Link sniffing: directional, timestamped traces of a node's access link.
//!
//! A website-fingerprinting adversary in the Bento paper sits between a
//! client and its guard relay and records packet direction, size and timing.
//! [`TraceEvent`] is exactly that record; the simulator appends one per
//! message crossing a sniffed node's interface.

use crate::node::{ConnId, NodeId};
use crate::time::SimTime;

/// Direction of an observed transmission relative to the sniffed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The sniffed node sent these bytes (upstream).
    Outgoing,
    /// The sniffed node received these bytes (downstream).
    Incoming,
}

impl Direction {
    /// +1 for outgoing, -1 for incoming — the signed convention used by the
    /// fingerprinting literature for direction sequences.
    pub fn sign(self) -> i8 {
        match self {
            Direction::Outgoing => 1,
            Direction::Incoming => -1,
        }
    }
}

/// One observed transmission on a sniffed access link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the transmission crossed the interface.
    pub time: SimTime,
    /// Direction relative to the sniffed node.
    pub dir: Direction,
    /// Application-message size in bytes (for Tor traffic: one cell).
    pub bytes: u32,
    /// The connection the message traveled on.
    pub conn: ConnId,
    /// The remote endpoint of that connection.
    pub peer: NodeId,
}

/// An in-memory recording of a node's link activity.
#[derive(Debug, Default, Clone)]
pub struct Sniffer {
    events: Vec<TraceEvent>,
}

impl Sniffer {
    /// New empty sniffer.
    pub fn new() -> Self {
        Sniffer { events: Vec::new() }
    }

    /// Append an observation.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All observations so far, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop all recorded observations (e.g. between page loads).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Total bytes observed in `dir`.
    pub fn total_bytes(&self, dir: Direction) -> u64 {
        self.events
            .iter()
            .filter(|e| e.dir == dir)
            .map(|e| e.bytes as u64)
            .sum()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, dir: Direction, bytes: u32) -> TraceEvent {
        TraceEvent {
            time: SimTime(t),
            dir,
            bytes,
            conn: ConnId(1),
            peer: NodeId(2),
        }
    }

    #[test]
    fn totals_split_by_direction() {
        let mut s = Sniffer::new();
        s.record(ev(1, Direction::Outgoing, 100));
        s.record(ev(2, Direction::Incoming, 514));
        s.record(ev(3, Direction::Incoming, 514));
        assert_eq!(s.total_bytes(Direction::Outgoing), 100);
        assert_eq!(s.total_bytes(Direction::Incoming), 1028);
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn direction_signs_follow_wf_convention() {
        assert_eq!(Direction::Outgoing.sign(), 1);
        assert_eq!(Direction::Incoming.sign(), -1);
    }
}
