//! Byte-oriented wire codec shared by every protocol in the workspace.
//!
//! Following the framing discipline of the networking guides, every protocol
//! message in this repository is encoded with an explicit, hand-written codec
//! rather than reflection: a [`Writer`] appends big-endian integers,
//! length-prefixed byte strings and varints to a buffer; a [`Reader`] decodes
//! them with exhaustive error reporting and **never panics on malformed
//! input** (a property the fuzz-style proptests in each protocol crate
//! enforce).

use std::fmt;

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced field did.
    Truncated {
        /// What the decoder was trying to read.
        what: &'static str,
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A varint ran longer than 10 bytes (i.e. does not fit a `u64`).
    VarintOverflow,
    /// A length prefix announced more bytes than the decoder allows.
    LengthTooLarge {
        /// What was being read.
        what: &'static str,
        /// The announced length.
        announced: u64,
        /// The maximum the decoder accepts.
        max: u64,
    },
    /// A byte string that must be UTF-8 was not.
    InvalidUtf8,
    /// A discriminant byte did not match any known variant.
    BadDiscriminant {
        /// The enum being decoded.
        what: &'static str,
        /// The unrecognized value.
        value: u64,
    },
    /// Trailing bytes remained after a complete decode where none are allowed.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                what,
                needed,
                remaining,
            } => write!(
                f,
                "truncated frame reading {what}: need {needed} bytes, {remaining} remain"
            ),
            WireError::VarintOverflow => write!(f, "varint does not fit in u64"),
            WireError::LengthTooLarge {
                what,
                announced,
                max,
            } => write!(f, "{what} length {announced} exceeds maximum {max}"),
            WireError::InvalidUtf8 => write!(f, "byte string is not valid UTF-8"),
            WireError::BadDiscriminant { what, value } => {
                write!(f, "unknown {what} discriminant {value}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Incrementally builds an encoded frame.
///
/// ```
/// use simnet::wire::{Writer, Reader};
/// let mut w = Writer::new();
/// w.u32(7).str("hello").varu64(300);
/// let buf = w.into_bytes();
/// let mut r = Reader::new(&buf);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.str("greeting").unwrap(), "hello");
/// assert_eq!(r.varu64().unwrap(), 300);
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// New writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Reserve space for at least `additional` more bytes, so a frame whose
    /// size is known up front (or discoverable mid-encode) is written with a
    /// single allocation instead of doubling growth.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.buf.reserve(additional);
        self
    }

    /// Finish and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Append a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append an LEB128 varint.
    pub fn varu64(&mut self, mut v: u64) -> &mut Self {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return self;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Append a varint length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.varu64(bytes.len() as u64);
        self.raw(bytes)
    }

    /// Append a UTF-8 string as a length-prefixed byte string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }
}

/// Decodes a frame produced by [`Writer`].
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Upper bound accepted for any length prefix, to bound allocation on
    /// hostile input.
    max_len: u64,
}

/// Default cap on any single length-prefixed field (16 MiB).
pub const DEFAULT_MAX_FIELD: u64 = 16 * 1024 * 1024;

impl<'a> Reader<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            max_len: DEFAULT_MAX_FIELD,
        }
    }

    /// Override the per-field length cap.
    pub fn with_max_field(mut self, max: u64) -> Self {
        self.max_len = max;
        self
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the frame has been fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a boolean byte; any nonzero value is `true`.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8, "u64")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Read an LEB128 varint.
    pub fn varu64(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8().map_err(|_| WireError::Truncated {
                what: "varint",
                needed: 1,
                remaining: 0,
            })?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Read `n` raw bytes (fixed-size field).
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Read a fixed-size array.
    pub fn array<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], WireError> {
        let b = self.take(N, what)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Read a varint-length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.varu64()?;
        if len > self.max_len {
            return Err(WireError::LengthTooLarge {
                what,
                announced: len,
                max: self.max_len,
            });
        }
        self.take(len as usize, what)
    }

    /// Read a length-prefixed byte string into an owned vector.
    pub fn bytes_vec(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        Ok(self.bytes(what)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let b = self.bytes(what)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new();
        w.u8(7)
            .bool(true)
            .u16(0xBEEF)
            .u32(0xDEADBEEF)
            .u64(0x0123_4567_89AB_CDEF)
            .varu64(300)
            .bytes(b"hello")
            .str("world");
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.varu64().unwrap(), 300);
        assert_eq!(r.bytes("b").unwrap(), b"hello");
        assert_eq!(r.str("s").unwrap(), "world");
        r.finish().unwrap();
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut w = Writer::new();
            w.varu64(v);
            let buf = w.into_bytes();
            let mut r = Reader::new(&buf);
            assert_eq!(r.varu64().unwrap(), v, "value {v}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut w = Writer::new();
        w.u32(42);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..2]);
        match r.u32() {
            Err(WireError::Truncated { needed: 4, .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = Writer::new();
        w.varu64(u64::MAX); // absurd length announcement
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        match r.bytes("payload") {
            Err(WireError::LengthTooLarge { .. }) => {}
            other => panic!("expected LengthTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes cannot encode a u64.
        let buf = [0xFFu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varu64(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.str("s"), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn decoder_never_panics_on_garbage() {
        // A poor man's fuzz loop: deterministic garbage of many lengths.
        let mut state = 0x9E37_79B9_u32;
        for len in 0..200usize {
            let mut buf = vec![0u8; len];
            for b in buf.iter_mut() {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let mut r = Reader::new(&buf);
            // Exercise every decode path; errors are fine, panics are not.
            let _ = r.clone().u64();
            let _ = r.clone().varu64();
            let _ = r.clone().bytes("x");
            let _ = r.str("y");
        }
    }
}
