//! Sharded conservative parallel discrete-event engine.
//!
//! Nodes are partitioned into `N` shards by node id (`id % N`); each shard
//! owns its nodes, their connection halves, a private event queue and its own
//! clock. Shards advance in lockstep *windows*: every window runs each shard
//! from the global minimum pending-event time `gn` up to an exclusive horizon
//! `gn + λ`, where the lookahead `λ` is the minimum possible cross-shard
//! one-way latency. Cross-shard traffic never travels faster than `λ`, so no
//! event generated inside a window can land inside the same window on another
//! shard — shards are free to run their windows in parallel. At the barrier
//! between windows, cross-shard envelopes are exchanged and inserted in
//! `(time, src, seq)`-sorted order.
//!
//! **Determinism.** Every event is keyed `(time, src node, per-src sequence)`
//! instead of the serial engine's global insertion order; connection and
//! timer ids pack `(owner node, per-owner counter)`; each node draws from its
//! own RNG stream seeded by `(run seed, node id)`; and all per-flow transport
//! state lives on exactly one shard (sender-side congestion/uplink sharing, a
//! receiver-side ingress pipe for downlink serialization). Nothing observable
//! depends on the partition, so runs are byte-identical across any shard
//! count and any worker-thread count — `determinism_check` gates this.
//!
//! The serial engine in [`crate::sim`] remains the default and is untouched;
//! see `DESIGN.md` §12 for the lookahead derivation, the barrier protocol and
//! the model deltas between the two engines.

use crate::iface::Iface;
// NB: `AsAny` is deliberately NOT imported: with the blanket `impl<T: Any>
// AsAny for T` in scope, `Box<dyn Node>::as_any()` would resolve on the Box
// itself instead of deref'ing to the node, breaking every downcast.
use crate::node::{ConnId, Ctx, CtxInner, Node, NodeId, TimerId};
use crate::sim::{BufPool, DirState, RunFlush, SimConfig, SimStats};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Direction, Sniffer, TraceEvent};
use crate::transport::TransportCfg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
// bento-lint: allow(BL001) -- HashSet is only the membership-only cancelled-timer
// tombstone set (never iterated), same contract as the serial engine's.
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtOrd};
use std::sync::{Barrier, Mutex};

/// The shard that owns `node` when the run is split into `shards` shards.
///
/// A pure, total function of the node id alone: `id % shards`. Every engine
/// instance, at any shard count and on any thread, places a node the same
/// way, which is what lets connection/timer ids and event keys stay
/// partition-independent.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    (node.0 as usize) % shards.max(1)
}

const ROLE_INIT: u8 = 0;
const ROLE_ACCEPT: u8 = 1;

/// The role `me` plays on `conn` (initiator halves are role 0).
fn role_of(me: NodeId, conn: ConnId) -> u8 {
    if (conn.0 >> 32) as u32 == me.0 {
        ROLE_INIT
    } else {
        ROLE_ACCEPT
    }
}

/// Shard-engine events. Unlike the serial engine, whole chunk payloads travel
/// as one `WireBatch` (they arrive at the same instant anyway), and each event
/// carries its partition-independent ordering key explicitly.
#[derive(Debug)]
enum SKind {
    /// Connect handshake reached the acceptor; creates the accept half.
    SynArrive {
        conn: ConnId,
        from: NodeId,
        to: NodeId,
        port: u16,
    },
    /// Connect handshake completed at the initiator.
    Established { conn: ConnId },
    /// A chunk finished serializing on the sender's uplink.
    ChunkDone { conn: ConnId, role: u8 },
    /// A chunk's worth of whole messages crossed the wire to the receiver.
    WireBatch {
        conn: ConnId,
        sender_role: u8,
        msgs: Vec<Vec<u8>>,
    },
    /// Ingress-pipe serialization finished; deliver to the node.
    Deliver {
        conn: ConnId,
        sender_role: u8,
        msgs: Vec<Vec<u8>>,
    },
    /// A graceful close reached the receiving half.
    CloseArrive { conn: ConnId, sender_role: u8 },
    /// A close finished trailing the receiver's ingress pipe; the half dies
    /// and the node hears `on_conn_closed`.
    CloseDone { conn: ConnId, recv_role: u8 },
    /// The closing side's own half goes dead (scheduled alongside the
    /// `CloseArrive`, so both ends die at the same simulated instant).
    HalfDead { conn: ConnId, role: u8 },
    /// A node timer fired.
    Timer { node: NodeId, id: u64, tag: u64 },
}

/// An event with its total-order key: `(time, src node, per-src seq)`.
#[derive(Debug)]
struct SEvent {
    time: SimTime,
    src: u32,
    seq: u64,
    kind: SKind,
}

impl SEvent {
    fn key(&self) -> (SimTime, u32, u64) {
        (self.time, self.src, self.seq)
    }
}

impl PartialEq for SEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for SEvent {}
impl PartialOrd for SEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the least key pops first. Keys
        // are unique (per-src seqs never repeat), so pop order is a total
        // order independent of insertion order.
        other.key().cmp(&self.key())
    }
}

/// A cross-shard message: an event plus the node it must reach. Routed to
/// `shard_of(dst)` at the next barrier.
struct Envelope {
    dst: NodeId,
    ev: SEvent,
}

/// Per-shard event queue: same pre-sizing and timer-tombstone support as the
/// serial [`crate::event::EventQueue`], but keyed by `(time, src, seq)`.
struct ShardQueue {
    heap: BinaryHeap<SEvent>,
}

impl ShardQueue {
    /// Matches the serial queue's pre-size so `--shards 1` keeps the PR 2
    /// zero-realloc property.
    const INITIAL_CAPACITY: usize = 1024;

    fn new() -> Self {
        ShardQueue {
            heap: BinaryHeap::with_capacity(Self::INITIAL_CAPACITY),
        }
    }

    fn push(&mut self, ev: SEvent) {
        self.heap.push(ev);
    }

    fn pop(&mut self) -> Option<SEvent> {
        self.heap.pop()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    /// Ids of every timer event still queued — the tombstone-prune contract,
    /// per shard.
    fn live_timer_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.heap.iter().filter_map(|e| match e.kind {
            SKind::Timer { id, .. } => Some(id),
            _ => None,
        })
    }
}

/// One endpoint of a connection. The initiator owns the `ROLE_INIT` half on
/// its shard; the acceptor owns the `ROLE_ACCEPT` half on its own — each half
/// holds only the transmit state of its owner, so no event ever needs to
/// mutate two shards.
struct Half {
    owner: NodeId,
    peer: NodeId,
    dir: DirState,
    dead: bool,
}

impl Half {
    fn new(cfg: &TransportCfg, owner: NodeId, peer: NodeId) -> Self {
        Half {
            owner,
            peer,
            dir: DirState::new(cfg),
            dead: false,
        }
    }
}

/// Per-node engine-side state, stored dense by local index (`id / N`).
struct NodeLocal {
    /// Lazily seeded from `(run seed, node id)`: identical draws at any
    /// shard count, and untouched cost for nodes that never draw.
    rng: Option<StdRng>,
    /// Per-node event sequence; the third component of every key this node
    /// emits.
    seq: u64,
    conn_ctr: u32,
    timer_ctr: u32,
    /// When this node's downlink ingress pipe next frees up.
    ingress_free: SimTime,
    /// Concurrently serializing chunks on this node's uplink (fair share).
    active_up: u32,
    sniffer: Option<Sniffer>,
}

impl NodeLocal {
    fn new() -> Self {
        NodeLocal {
            rng: None,
            seq: 0,
            conn_ctr: 0,
            timer_ctr: 0,
            ingress_free: SimTime::ZERO,
            active_up: 0,
            sniffer: None,
        }
    }
}

/// State shared read-only by every shard during a window: the partition
/// arity, transport model, and the global iface/name tables.
pub(crate) struct ShardShared {
    seed: u64,
    cfg: TransportCfg,
    nshards: usize,
    ifaces: Vec<Iface>,
    names: Vec<String>,
}

/// What a [`Ctx`] borrows while a shard dispatches one of its nodes.
pub(crate) struct ShardCtx<'a> {
    pub(crate) shard: &'a mut ShardCore,
    pub(crate) shared: &'a ShardShared,
}

/// One shard: its nodes, their halves, its queue and clock.
pub(crate) struct ShardCore {
    idx: u32,
    nshards: u32,
    pub(crate) now: SimTime,
    queue: ShardQueue,
    nodes: Vec<Option<Box<dyn Node>>>,
    locals: Vec<NodeLocal>,
    /// Keyed `(conn id, role)`; never removed, so lookups are infallible
    /// after creation. BTreeMap for deterministic debug iteration.
    conns: BTreeMap<(u64, u8), Half>,
    /// Cross-shard emissions accumulated during a window; drained at the
    /// barrier (or immediately by the main thread between runs).
    outbox: Vec<Envelope>,
    pub(crate) pool: BufPool,
    stats: SimStats,
    // bento-lint: allow(BL001) -- membership-only tombstone set; never iterated.
    cancelled_timers: HashSet<u64>,
    pending_timers: usize,
    timer_sweeps: u64,
    /// Telemetry baselines: cumulative values already flushed to the process
    /// registry, so each run reports only its delta.
    flushed_stats: SimStats,
    flushed_pool: (u64, u64, u64),
    flushed_sweeps: u64,
    msg_bytes: telemetry::hist::LogHistogram,
    hist_full: bool,
    max_depth: usize,
}

impl ShardCore {
    fn new(idx: u32, nshards: u32) -> Self {
        ShardCore {
            idx,
            nshards,
            now: SimTime::ZERO,
            queue: ShardQueue::new(),
            nodes: Vec::new(),
            locals: Vec::new(),
            conns: BTreeMap::new(),
            outbox: Vec::new(),
            pool: BufPool::default(),
            stats: SimStats::default(),
            // bento-lint: allow(BL001) -- see field declaration.
            cancelled_timers: HashSet::new(),
            pending_timers: 0,
            timer_sweeps: 0,
            flushed_stats: SimStats::default(),
            flushed_pool: (0, 0, 0),
            flushed_sweeps: 0,
            msg_bytes: telemetry::hist::LogHistogram::new(),
            hist_full: false,
            max_depth: 0,
        }
    }

    fn local_index(&self, id: NodeId) -> usize {
        debug_assert_eq!(id.0 % self.nshards, self.idx, "node routed to wrong shard");
        (id.0 / self.nshards) as usize
    }

    fn local_mut(&mut self, id: NodeId) -> &mut NodeLocal {
        let li = self.local_index(id);
        &mut self.locals[li]
    }

    /// Next event-ordering sequence for an emission owned by `src`.
    fn next_seq(&mut self, src: NodeId) -> u64 {
        let l = self.local_mut(src);
        let s = l.seq;
        l.seq += 1;
        s
    }

    pub(crate) fn rng_for(&mut self, shared: &ShardShared, me: NodeId) -> &mut StdRng {
        let seed = shared.seed;
        let l = self.local_mut(me);
        l.rng.get_or_insert_with(|| {
            // Distinct, partition-independent stream per node.
            StdRng::seed_from_u64(seed ^ (me.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        })
    }

    fn one_way(&self, shared: &ShardShared, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            shared.cfg.loopback_rtt / 2
        } else {
            shared.ifaces[a.0 as usize].latency + shared.ifaces[b.0 as usize].latency
        }
    }

    fn rtt(&self, shared: &ShardShared, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            shared.cfg.loopback_rtt
        } else {
            self.one_way(shared, a, b) * 2
        }
    }

    /// Route an event to `dst`: same shard goes straight into the queue,
    /// cross-shard into the outbox for the next barrier exchange.
    fn emit(&mut self, dst: NodeId, ev: SEvent) {
        if shard_of(dst, self.nshards as usize) == self.idx as usize {
            self.queue.push(ev);
        } else {
            self.outbox.push(Envelope { dst, ev });
        }
    }

    pub(crate) fn connect(
        &mut self,
        shared: &ShardShared,
        me: NodeId,
        dst: NodeId,
        port: u16,
    ) -> ConnId {
        let l = self.local_mut(me);
        let ctr = l.conn_ctr;
        l.conn_ctr += 1;
        let conn = ConnId(((me.0 as u64) << 32) | ctr as u64);
        self.conns
            .insert((conn.0, ROLE_INIT), Half::new(&shared.cfg, me, dst));
        self.stats.conns_opened += 1;
        let one_way = self.one_way(shared, me, dst);
        let rtt = self.rtt(shared, me, dst);
        let t_syn = self.now + one_way;
        let t_est = self.now + rtt;
        let s1 = self.next_seq(me);
        self.emit(
            dst,
            SEvent {
                time: t_syn,
                src: me.0,
                seq: s1,
                kind: SKind::SynArrive {
                    conn,
                    from: me,
                    to: dst,
                    port,
                },
            },
        );
        let s2 = self.next_seq(me);
        self.emit(
            me,
            SEvent {
                time: t_est,
                src: me.0,
                seq: s2,
                kind: SKind::Established { conn },
            },
        );
        conn
    }

    pub(crate) fn peer_of(&self, me: NodeId, conn: ConnId) -> Option<NodeId> {
        let h = self.conns.get(&(conn.0, role_of(me, conn)))?;
        (h.owner == me).then_some(h.peer)
    }

    pub(crate) fn send(
        &mut self,
        shared: &ShardShared,
        me: NodeId,
        conn: ConnId,
        msg: Vec<u8>,
    ) -> bool {
        let role = role_of(me, conn);
        let Some(h) = self.conns.get_mut(&(conn.0, role)) else {
            return false;
        };
        if h.owner != me || h.dead || h.dir.closing {
            return false;
        }
        h.dir.queue.push_back(msg);
        self.kick(shared, conn, role);
        true
    }

    pub(crate) fn close(&mut self, shared: &ShardShared, me: NodeId, conn: ConnId) {
        let role = role_of(me, conn);
        let Some(h) = self.conns.get_mut(&(conn.0, role)) else {
            return;
        };
        if h.owner != me || h.dead {
            return;
        }
        h.dir.closing = true;
        self.maybe_send_close(shared, conn, role);
    }

    fn maybe_send_close(&mut self, shared: &ShardShared, conn: ConnId, role: u8) {
        let (me, peer);
        {
            let h = self.conns.get_mut(&(conn.0, role)).expect("half exists");
            let d = &mut h.dir;
            if !d.closing || d.close_sent || d.busy || !d.queue.is_empty() || !d.ready {
                return;
            }
            d.close_sent = true;
            me = h.owner;
            peer = h.peer;
        }
        let t = self.now + self.one_way(shared, me, peer);
        let s1 = self.next_seq(me);
        self.emit(
            peer,
            SEvent {
                time: t,
                src: me.0,
                seq: s1,
                kind: SKind::CloseArrive {
                    conn,
                    sender_role: role,
                },
            },
        );
        // Our own half dies at the same instant the peer learns of the close,
        // mirroring the serial engine's single conn-wide dead flag.
        let s2 = self.next_seq(me);
        self.emit(
            me,
            SEvent {
                time: t,
                src: me.0,
                seq: s2,
                kind: SKind::HalfDead { conn, role },
            },
        );
    }

    pub(crate) fn set_timer(&mut self, me: NodeId, delay: SimDuration, tag: u64) -> TimerId {
        let at = self.now + delay;
        let l = self.local_mut(me);
        let id = ((me.0 as u64) << 32) | l.timer_ctr as u64;
        l.timer_ctr += 1;
        self.pending_timers += 1;
        let seq = self.next_seq(me);
        self.queue.push(SEvent {
            time: at,
            src: me.0,
            seq,
            kind: SKind::Timer { node: me, id, tag },
        });
        TimerId(id)
    }

    pub(crate) fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled_timers.insert(id.0);
        // Same tombstone-prune policy as the serial engine, applied per shard:
        // when tombstones outnumber timers actually queued here by a margin,
        // sweep out the dead ones.
        if self.cancelled_timers.len() > self.pending_timers + 64 {
            let live: std::collections::BTreeSet<u64> = self.queue.live_timer_ids().collect();
            self.cancelled_timers.retain(|t| live.contains(t));
            self.timer_sweeps += 1;
        }
    }

    /// Start serializing the next chunk on `role`'s half of `conn` — the
    /// serial engine's packing rules, with the receiver `down_share` term
    /// replaced by the receiver-side ingress pipe (see module docs).
    fn kick(&mut self, shared: &ShardShared, conn: ConnId, role: u8) {
        let (me, peer, chunk, cw_rate);
        {
            let Some(h) = self.conns.get(&(conn.0, role)) else {
                return;
            };
            if h.dead {
                return;
            }
            let d = &h.dir;
            if !d.ready || d.busy || d.queue.is_empty() {
                return;
            }
            me = h.owner;
            peer = h.peer;
            let overhead = shared.cfg.per_msg_overhead as u64;
            let front_total = d.queue.front().map(|m| m.len() as u64).unwrap_or(0) + overhead;
            let mut total = front_total.saturating_sub(d.front_sent);
            for m in d.queue.iter().skip(1) {
                let need = m.len() as u64 + overhead;
                if total + need > shared.cfg.chunk as u64 {
                    break;
                }
                total += need;
            }
            chunk = total.min(shared.cfg.chunk as u64) as u32;
            cw_rate = d.cwnd.rate(self.rtt(shared, me, peer));
        }
        let rate = if me == peer {
            cw_rate.min(shared.cfg.loopback_bps)
        } else {
            let au = {
                let l = self.local_mut(me);
                l.active_up += 1;
                l.active_up
            };
            cw_rate.min(shared.ifaces[me.0 as usize].up_share(au as usize))
        };
        {
            let h = self.conns.get_mut(&(conn.0, role)).expect("half exists");
            h.dir.busy = true;
            h.dir.inflight_chunk = chunk;
        }
        let t = self.now + SimDuration::for_bytes(chunk as u64, rate);
        let seq = self.next_seq(me);
        self.queue.push(SEvent {
            time: t,
            src: me.0,
            seq,
            kind: SKind::ChunkDone { conn, role },
        });
    }

    fn on_chunk_done(&mut self, shared: &ShardShared, conn: ConnId, role: u8) {
        let (me, peer);
        let mut done: Vec<Vec<u8>> = Vec::new();
        {
            let h = self.conns.get_mut(&(conn.0, role)).expect("half exists");
            me = h.owner;
            peer = h.peer;
            let d = &mut h.dir;
            let chunk = d.inflight_chunk;
            d.busy = false;
            d.inflight_chunk = 0;
            d.cwnd.on_acked(chunk);
            d.front_sent += chunk as u64;
            while let Some(front_total) = d
                .queue
                .front()
                .map(|m| m.len() as u64 + shared.cfg.per_msg_overhead as u64)
            {
                if d.front_sent < front_total {
                    break;
                }
                d.front_sent -= front_total;
                done.push(d.queue.pop_front().expect("front exists"));
            }
            if d.queue.is_empty() {
                d.front_sent = 0;
            }
        }
        if me != peer {
            let l = self.local_mut(me);
            l.active_up = l.active_up.saturating_sub(1);
        }
        if !done.is_empty() {
            let now = self.now;
            if let Some(s) = self.local_mut(me).sniffer.as_mut() {
                for m in &done {
                    s.record(TraceEvent {
                        time: now,
                        dir: Direction::Outgoing,
                        bytes: m.len() as u32,
                        conn,
                        peer,
                    });
                }
            }
            // One envelope per chunk: every whole message the chunk covered
            // crosses the wire together and arrives at the same instant
            // (preserving the serial engine's same-instant delivery batches).
            let t = self.now + self.one_way(shared, me, peer);
            let seq = self.next_seq(me);
            self.emit(
                peer,
                SEvent {
                    time: t,
                    src: me.0,
                    seq,
                    kind: SKind::WireBatch {
                        conn,
                        sender_role: role,
                        msgs: done,
                    },
                },
            );
        }
        self.kick(shared, conn, role);
        self.maybe_send_close(shared, conn, role);
    }

    /// A chunk's messages reached this node's access link: serialize them
    /// through the downlink ingress pipe, then deliver.
    fn on_wire_batch(
        &mut self,
        shared: &ShardShared,
        conn: ConnId,
        sender_role: u8,
        msgs: Vec<Vec<u8>>,
    ) {
        let recv_role = 1 - sender_role;
        let me = {
            let Some(h) = self.conns.get(&(conn.0, recv_role)) else {
                return;
            };
            if h.dead {
                return;
            }
            h.owner
        };
        let down = shared.ifaces[me.0 as usize].down_bps;
        if down == 0 {
            self.deliver(shared, conn, recv_role, msgs);
            return;
        }
        let wire: u64 = msgs
            .iter()
            .map(|m| m.len() as u64 + shared.cfg.per_msg_overhead as u64)
            .sum();
        let now = self.now;
        let l = self.local_mut(me);
        let start = now.max(l.ingress_free);
        let done_at = start + SimDuration::for_bytes(wire, down);
        l.ingress_free = done_at;
        if done_at == now {
            self.deliver(shared, conn, recv_role, msgs);
        } else {
            let seq = self.next_seq(me);
            self.queue.push(SEvent {
                time: done_at,
                src: me.0,
                seq,
                kind: SKind::Deliver {
                    conn,
                    sender_role,
                    msgs,
                },
            });
        }
    }

    fn deliver(&mut self, shared: &ShardShared, conn: ConnId, recv_role: u8, msgs: Vec<Vec<u8>>) {
        let (me, peer) = {
            let Some(h) = self.conns.get(&(conn.0, recv_role)) else {
                return;
            };
            if h.dead {
                return;
            }
            (h.owner, h.peer)
        };
        self.stats.msgs_delivered += msgs.len() as u64;
        let now = self.now;
        let hist_full = self.hist_full;
        let mut bytes = 0u64;
        for m in &msgs {
            bytes += m.len() as u64;
            if hist_full {
                self.msg_bytes.record(m.len() as u64);
            }
        }
        self.stats.bytes_delivered += bytes;
        if let Some(s) = self.local_mut(me).sniffer.as_mut() {
            for m in &msgs {
                s.record(TraceEvent {
                    time: now,
                    dir: Direction::Incoming,
                    bytes: m.len() as u32,
                    conn,
                    peer,
                });
            }
        }
        if msgs.len() == 1 {
            let msg = msgs.into_iter().next().expect("one msg");
            self.dispatch(shared, me, |n, ctx| n.on_msg(ctx, conn, msg));
        } else {
            self.dispatch(shared, me, |n, ctx| n.on_msgs(ctx, conn, msgs));
        }
    }

    fn dispatch(
        &mut self,
        shared: &ShardShared,
        id: NodeId,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
    ) {
        let li = self.local_index(id);
        let mut node = self.nodes[li]
            .take()
            .expect("node reentrancy during dispatch");
        let mut ctx = Ctx {
            inner: CtxInner::Shard(ShardCtx {
                shard: self,
                shared,
            }),
            me: id,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[li] = Some(node);
    }

    /// A graceful close takes effect on the receiving half.
    fn close_done(&mut self, shared: &ShardShared, conn: ConnId, recv_role: u8) {
        let me = {
            let Some(h) = self.conns.get_mut(&(conn.0, recv_role)) else {
                return;
            };
            if h.dead {
                return;
            }
            h.dead = true;
            h.owner
        };
        self.dispatch(shared, me, |n, ctx| n.on_conn_closed(ctx, conn));
    }

    fn handle(&mut self, shared: &ShardShared, kind: SKind) {
        match kind {
            SKind::SynArrive {
                conn,
                from,
                to,
                port,
            } => {
                let mut h = Half::new(&shared.cfg, to, from);
                h.dir.ready = true;
                self.conns.insert((conn.0, ROLE_ACCEPT), h);
                // No kick/close check needed: the half was born this instant,
                // so its queue is empty and it cannot be closing.
                self.dispatch(shared, to, |n, ctx| n.on_conn_open(ctx, conn, from, port));
            }
            SKind::Established { conn } => {
                let (me, peer) = {
                    let h = self
                        .conns
                        .get_mut(&(conn.0, ROLE_INIT))
                        .expect("init half exists");
                    if h.dead {
                        return;
                    }
                    h.dir.ready = true;
                    (h.owner, h.peer)
                };
                self.kick(shared, conn, ROLE_INIT);
                self.maybe_send_close(shared, conn, ROLE_INIT);
                self.dispatch(shared, me, |n, ctx| n.on_conn_established(ctx, conn, peer));
            }
            SKind::ChunkDone { conn, role } => self.on_chunk_done(shared, conn, role),
            SKind::WireBatch {
                conn,
                sender_role,
                msgs,
            } => self.on_wire_batch(shared, conn, sender_role, msgs),
            SKind::Deliver {
                conn,
                sender_role,
                msgs,
            } => self.deliver(shared, conn, 1 - sender_role, msgs),
            SKind::CloseArrive { conn, sender_role } => {
                let recv_role = 1 - sender_role;
                let me = {
                    let Some(h) = self.conns.get(&(conn.0, recv_role)) else {
                        return;
                    };
                    if h.dead {
                        return;
                    }
                    h.owner
                };
                // The close trails anything still serializing through this
                // node's ingress pipe: the sender emitted it after its last
                // data chunk, so it must not overtake deferred `Deliver`
                // events and kill the half before they land (the serial
                // engine pays downlink cost at the sender, where this
                // ordering is structural).
                let free = self.local_mut(me).ingress_free;
                if free <= self.now {
                    self.close_done(shared, conn, recv_role);
                } else {
                    let seq = self.next_seq(me);
                    self.queue.push(SEvent {
                        time: free,
                        src: me.0,
                        seq,
                        kind: SKind::CloseDone { conn, recv_role },
                    });
                }
            }
            SKind::CloseDone { conn, recv_role } => self.close_done(shared, conn, recv_role),
            SKind::HalfDead { conn, role } => {
                if let Some(h) = self.conns.get_mut(&(conn.0, role)) {
                    h.dead = true;
                }
            }
            SKind::Timer { node, id, tag } => {
                self.pending_timers = self.pending_timers.saturating_sub(1);
                if self.cancelled_timers.remove(&id) {
                    return;
                }
                self.dispatch(shared, node, |n, ctx| n.on_timer(ctx, tag));
            }
        }
    }

    /// Run this shard's events strictly before `horizon`. Returns events
    /// processed.
    fn run_window(&mut self, shared: &ShardShared, horizon: SimTime) -> u64 {
        let mut processed = 0u64;
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let depth = self.queue.len();
            if depth > self.max_depth {
                self.max_depth = depth;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.now = ev.time;
            self.stats.events += 1;
            processed += 1;
            self.handle(shared, ev.kind);
        }
        processed
    }

    /// This run's telemetry delta, advancing the flush baselines.
    fn flush_delta(&mut self) -> RunFlush {
        let s = self.stats;
        let f = self.flushed_stats;
        let pool = self.pool.counters();
        let d = RunFlush {
            events: s.events - f.events,
            msgs: s.msgs_delivered - f.msgs_delivered,
            bytes: s.bytes_delivered - f.bytes_delivered,
            conns: s.conns_opened - f.conns_opened,
            pool_hits: pool.0 - self.flushed_pool.0,
            pool_misses: pool.1 - self.flushed_pool.1,
            pool_recycled: pool.2 - self.flushed_pool.2,
            timer_sweeps: self.timer_sweeps - self.flushed_sweeps,
            queue_depth: self.max_depth as u64,
            ..RunFlush::default()
        };
        self.flushed_stats = s;
        self.flushed_pool = pool;
        self.flushed_sweeps = self.timer_sweeps;
        d
    }
}

/// The sharded engine behind [`crate::sim::Simulator`] when
/// `SimConfig::shards >= 1`.
pub(crate) struct ShardedSim {
    shared: ShardShared,
    shards: Vec<ShardCore>,
    threads: usize,
    total_nodes: usize,
    started_upto: usize,
}

impl ShardedSim {
    pub(crate) fn new(cfg: &SimConfig) -> Self {
        let n = cfg.shards.max(1);
        ShardedSim {
            shared: ShardShared {
                seed: cfg.seed,
                cfg: cfg.transport,
                nshards: n,
                ifaces: Vec::new(),
                names: Vec::new(),
            },
            shards: (0..n).map(|i| ShardCore::new(i as u32, n as u32)).collect(),
            threads: cfg.shard_threads,
            total_nodes: 0,
            started_upto: 0,
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn locate(&self, id: NodeId) -> (usize, usize) {
        let s = shard_of(id, self.shared.nshards);
        (s, (id.0 as usize) / self.shared.nshards)
    }

    pub(crate) fn add_node(&mut self, name: String, iface: Iface, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.total_nodes as u32);
        self.total_nodes += 1;
        let (s, _) = self.locate(id);
        self.shards[s].nodes.push(Some(node));
        self.shards[s].locals.push(NodeLocal::new());
        self.shared.ifaces.push(iface);
        self.shared.names.push(name);
        id
    }

    pub(crate) fn enable_sniffer(&mut self, id: NodeId) {
        let (s, li) = self.locate(id);
        self.shards[s].locals[li].sniffer = Some(Sniffer::new());
    }

    pub(crate) fn sniffer(&self, id: NodeId) -> &Sniffer {
        let (s, li) = self.locate(id);
        self.shards[s].locals[li]
            .sniffer
            .as_ref()
            .expect("sniffer not enabled on this node")
    }

    pub(crate) fn sniffer_mut(&mut self, id: NodeId) -> &mut Sniffer {
        let (s, li) = self.locate(id);
        self.shards[s].locals[li]
            .sniffer
            .as_mut()
            .expect("sniffer not enabled on this node")
    }

    pub(crate) fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    pub(crate) fn stats(&self) -> SimStats {
        let mut out = SimStats::default();
        for s in &self.shards {
            out.events += s.stats.events;
            out.msgs_delivered += s.stats.msgs_delivered;
            out.bytes_delivered += s.stats.bytes_delivered;
            out.conns_opened += s.stats.conns_opened;
        }
        out
    }

    pub(crate) fn node_name(&self, id: NodeId) -> &str {
        &self.shared.names[id.0 as usize]
    }

    pub(crate) fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        let (s, li) = self.locate(id);
        self.shards[s].nodes[li]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    pub(crate) fn with_node<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let (s, li) = self.locate(id);
        let mut node = self.shards[s].nodes[li]
            .take()
            .expect("node is being dispatched");
        let r = {
            let mut ctx = Ctx {
                inner: CtxInner::Shard(ShardCtx {
                    shard: &mut self.shards[s],
                    shared: &self.shared,
                }),
                me: id,
            };
            f(
                node.as_any_mut()
                    .downcast_mut::<T>()
                    .expect("node type mismatch"),
                &mut ctx,
            )
        };
        self.shards[s].nodes[li] = Some(node);
        self.route_outboxes();
        r
    }

    pub(crate) fn active_link_slots(&self, id: NodeId) -> (u32, u32) {
        let (s, li) = self.locate(id);
        // The sharded model has no receiver-side slot count (the ingress pipe
        // replaces downlink fair sharing); report 0 for the downlink.
        (self.shards[s].locals[li].active_up, 0)
    }

    fn ensure_started(&mut self) {
        while self.started_upto < self.total_nodes {
            let id = NodeId(self.started_upto as u32);
            self.started_upto += 1;
            let (s, _) = self.locate(id);
            let shared = &self.shared;
            self.shards[s].dispatch(shared, id, |n, ctx| n.on_start(ctx));
        }
        self.route_outboxes();
    }

    /// Drain every shard's outbox into the destination queues, in
    /// `(time, src, seq)`-sorted order (main-thread path, used between runs
    /// and by the sequential window loop).
    fn route_outboxes(&mut self) {
        let mut pending: Vec<Envelope> = Vec::new();
        for s in &mut self.shards {
            pending.append(&mut s.outbox);
        }
        if pending.is_empty() {
            return;
        }
        pending.sort_by_key(|e| e.ev.key());
        for env in pending {
            let s = shard_of(env.dst, self.shared.nshards);
            self.shards[s].queue.push(env.ev);
        }
    }

    /// The conservative lookahead: the minimum one-way latency any message
    /// can incur between two distinct shards — the sum of the two smallest
    /// per-shard minimum access latencies. `None` when fewer than two shards
    /// hold nodes (no cross-shard traffic is possible, lookahead ∞).
    fn lookahead(&self) -> Option<SimDuration> {
        let n = self.shared.nshards;
        let mut per_shard: Vec<Option<u64>> = vec![None; n];
        for (i, iface) in self.shared.ifaces.iter().enumerate() {
            let s = shard_of(NodeId(i as u32), n);
            let lat = iface.latency.0;
            per_shard[s] = Some(per_shard[s].map_or(lat, |m: u64| m.min(lat)));
        }
        let mut mins: Vec<u64> = per_shard.into_iter().flatten().collect();
        if mins.len() < 2 {
            return None;
        }
        mins.sort_unstable();
        let lambda = mins[0] + mins[1];
        assert!(
            lambda > 0,
            "sharded engine requires positive cross-shard lookahead: at least two \
             shards contain nodes with zero access-link latency, so the minimum \
             cross-shard delay is zero. Give nodes nonzero latency or run with \
             shards = 1."
        );
        Some(SimDuration(lambda))
    }

    fn effective_threads(&self) -> usize {
        let n = self.shards.len();
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, n)
    }

    pub(crate) fn run_until(&mut self, limit: SimTime) -> u64 {
        self.ensure_started();
        let hist_full = telemetry::mode() >= telemetry::Mode::Full;
        for s in &mut self.shards {
            s.hist_full = hist_full;
            s.max_depth = s.queue.len();
        }
        let enter_ns = self.now().as_nanos();
        let lookahead = self.lookahead();
        let threads = self.effective_threads();
        let processed = if threads <= 1 || self.shards.len() == 1 {
            self.run_sequential(limit, lookahead)
        } else {
            self.run_parallel(limit, lookahead.expect("multi-shard lookahead"), threads)
        };
        // Settle every shard clock on the common end time, as the serial
        // engine does for its single clock.
        let end = if limit < SimTime::MAX {
            limit
        } else {
            self.now()
        };
        for s in &mut self.shards {
            if s.now < end {
                s.now = end;
            }
        }
        self.flush_run(enter_ns, processed);
        processed
    }

    fn window_horizon(gn: SimTime, lookahead: Option<SimDuration>, limit: SimTime) -> SimTime {
        let cap = SimTime(limit.0.saturating_add(1));
        match lookahead {
            None => cap,
            Some(l) => SimTime(gn.0.saturating_add(l.0)).min(cap),
        }
    }

    fn run_sequential(&mut self, limit: SimTime, lookahead: Option<SimDuration>) -> u64 {
        let mut processed = 0u64;
        while let Some(gn) = self.shards.iter().filter_map(|s| s.queue.peek_time()).min() {
            if gn > limit {
                break;
            }
            let horizon = Self::window_horizon(gn, lookahead, limit);
            for s in &mut self.shards {
                processed += s.run_window(&self.shared, horizon);
            }
            self.route_outboxes();
        }
        processed
    }

    fn run_parallel(&mut self, limit: SimTime, lookahead: SimDuration, threads: usize) -> u64 {
        let n = self.shards.len();
        let per_worker = n.div_ceil(threads);
        let nworkers = n.div_ceil(per_worker);
        let barrier = Barrier::new(nworkers);
        let stop = AtomicBool::new(false);
        let horizon = AtomicU64::new(0);
        let mins: Vec<AtomicU64> = (0..nworkers).map(|_| AtomicU64::new(u64::MAX)).collect();
        let counts: Vec<AtomicU64> = (0..nworkers).map(|_| AtomicU64::new(0)).collect();
        let inboxes: Vec<Mutex<Vec<Envelope>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for (w, chunk) in self.shards.chunks_mut(per_worker).enumerate() {
                let barrier = &barrier;
                let stop = &stop;
                let horizon = &horizon;
                let mins = &mins;
                let counts = &counts;
                let inboxes = &inboxes;
                scope.spawn(move || {
                    let mut per_dst: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
                    let mut processed = 0u64;
                    loop {
                        // Barrier 1: publish this worker's minimum pending
                        // time; the leader derives the window horizon.
                        let my_min = chunk
                            .iter()
                            .filter_map(|s| s.queue.peek_time())
                            .map(|t| t.0)
                            .min()
                            .unwrap_or(u64::MAX);
                        mins[w].store(my_min, AtOrd::SeqCst);
                        if barrier.wait().is_leader() {
                            let gn = mins
                                .iter()
                                .map(|m| m.load(AtOrd::SeqCst))
                                .min()
                                .unwrap_or(u64::MAX);
                            if gn == u64::MAX || gn > limit.0 {
                                stop.store(true, AtOrd::SeqCst);
                            } else {
                                let h = Self::window_horizon(SimTime(gn), Some(lookahead), limit);
                                horizon.store(h.0, AtOrd::SeqCst);
                            }
                        }
                        // Barrier 2: everyone sees the horizon (or the stop
                        // flag) before any shard advances.
                        barrier.wait();
                        if stop.load(AtOrd::SeqCst) {
                            break;
                        }
                        let h = SimTime(horizon.load(AtOrd::SeqCst));
                        for s in chunk.iter_mut() {
                            processed += s.run_window(shared, h);
                            for env in s.outbox.drain(..) {
                                per_dst[shard_of(env.dst, n)].push(env);
                            }
                        }
                        for (ds, v) in per_dst.iter_mut().enumerate() {
                            if !v.is_empty() {
                                inboxes[ds].lock().expect("inbox lock").append(v);
                            }
                        }
                        // Barrier 3: all outboxes are posted; each worker
                        // drains its own shards' inboxes in sorted order.
                        barrier.wait();
                        for s in chunk.iter_mut() {
                            let mut inb = std::mem::take(
                                &mut *inboxes[s.idx as usize].lock().expect("inbox lock"),
                            );
                            inb.sort_by_key(|e| e.ev.key());
                            for env in inb {
                                s.queue.push(env.ev);
                            }
                        }
                    }
                    counts[w].store(processed, AtOrd::SeqCst);
                });
            }
        });
        counts.iter().map(|c| c.load(AtOrd::SeqCst)).sum()
    }

    /// Post-run telemetry epilogue, all from the main thread: node-local
    /// counters flush in global id order, then per-shard engine deltas merge
    /// in shard-index order.
    fn flush_run(&mut self, enter_ns: u64, processed: u64) {
        for id in 0..self.total_nodes {
            let (s, li) = self.locate(NodeId(id as u32));
            if let Some(node) = self.shards[s].nodes[li].as_mut() {
                node.flush_telemetry();
            }
        }
        let mut total = RunFlush::default();
        let mut hist = telemetry::hist::LogHistogram::new();
        for s in &mut self.shards {
            let d = s.flush_delta();
            total.events += d.events;
            total.msgs += d.msgs;
            total.bytes += d.bytes;
            total.conns += d.conns;
            total.pool_hits += d.pool_hits;
            total.pool_misses += d.pool_misses;
            total.pool_recycled += d.pool_recycled;
            total.timer_sweeps += d.timer_sweeps;
            total.queue_depth = total.queue_depth.max(d.queue_depth);
            if !s.msg_bytes.is_empty() {
                hist.merge(&std::mem::take(&mut s.msg_bytes));
            }
        }
        total.enter_ns = enter_ns;
        total.exit_ns = self.now().as_nanos();
        total.processed = processed;
        crate::sim::flush_run_telemetry(&total, &mut hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::time::SimTime;

    /// Echoes every message back on the same connection.
    struct Echo;
    impl Node for Echo {
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
            ctx.send(conn, msg);
        }
    }

    /// Connects at start, sends one message, records the echo time.
    struct Pinger {
        target: NodeId,
        payload: usize,
        reply_at: Option<SimTime>,
        replies: u32,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let c = ctx.connect(self.target, 80);
            ctx.send(c, vec![0u8; self.payload]);
        }
        fn on_msg(&mut self, ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {
            self.reply_at = Some(ctx.now());
            self.replies += 1;
        }
    }

    fn sharded(seed: u64, shards: usize, threads: usize) -> Simulator {
        Simulator::new(SimConfig {
            seed,
            shards,
            shard_threads: threads,
            ..SimConfig::default()
        })
    }

    /// Build a ring of pingers+echoes and run to quiescence, returning
    /// (stats, per-pinger reply times) — the invariance fingerprint.
    fn ring_run(shards: usize, threads: usize, n: usize) -> (crate::sim::SimStats, Vec<u64>) {
        let mut sim = sharded(7, shards, threads);
        let iface = Iface::symmetric(SimDuration::from_millis(10), 1_000_000);
        let mut ids = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                ids.push(sim.add_node(format!("echo{i}"), iface, Box::new(Echo)));
            } else {
                // Target the previous echo node.
                let target = ids[i - 1];
                ids.push(sim.add_node(
                    format!("ping{i}"),
                    iface,
                    Box::new(Pinger {
                        target,
                        payload: 2000 + i * 37,
                        reply_at: None,
                        replies: 0,
                    }),
                ));
            }
        }
        sim.run_to_quiescence();
        let mut replies = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                let p: &Pinger = sim.node_ref(*id);
                assert_eq!(p.replies, 1, "pinger {i} got exactly one echo");
                replies.push(p.reply_at.expect("reply").as_nanos());
            }
        }
        (sim.stats(), replies)
    }

    #[test]
    fn shard_of_is_total_and_stable() {
        for shards in 1..=8usize {
            for id in 0..1000u32 {
                let s = shard_of(NodeId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(NodeId(id), shards));
            }
        }
        // shards == 0 is clamped, not a panic.
        assert_eq!(shard_of(NodeId(3), 0), 0);
    }

    #[test]
    fn echo_rtt_matches_across_shard_counts() {
        let (s1, r1) = ring_run(1, 1, 8);
        for shards in [2, 3, 4, 7] {
            let (s, r) = ring_run(shards, 1, 8);
            assert_eq!(r, r1, "reply times differ at shards={shards}");
            assert_eq!(s, s1, "stats differ at shards={shards}");
        }
    }

    #[test]
    fn results_invariant_under_worker_threads() {
        let (s1, r1) = ring_run(4, 1, 10);
        for threads in [2, 3, 4, 8] {
            let (s, r) = ring_run(4, threads, 10);
            assert_eq!(r, r1, "reply times differ at threads={threads}");
            assert_eq!(s, s1, "stats differ at threads={threads}");
        }
    }

    /// Timers fire at the right instants and cancellation works, on a
    /// node placed in a non-zero shard.
    struct TimerNode {
        fired: Vec<(u64, SimTime)>,
        cancel_me: Option<TimerId>,
    }
    impl Node for TimerNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(5), 1);
            let t = ctx.set_timer(SimDuration::from_millis(7), 2);
            ctx.set_timer(SimDuration::from_millis(9), 3);
            self.cancel_me = Some(t);
        }
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            if tag == 1 {
                if let Some(t) = self.cancel_me.take() {
                    ctx.cancel_timer(t);
                }
            }
            self.fired.push((tag, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_and_cancel_in_any_shard() {
        // 1 ms access latency: zero-latency ifaces on 2+ shards would make
        // the lookahead zero, which the engine rejects by design.
        let iface = Iface::symmetric(SimDuration::from_millis(1), 0);
        for shards in [1usize, 3] {
            let mut sim = sharded(3, shards, 1);
            // Pad so the timer node lands in shard 1 of 3.
            sim.add_node("pad0", iface, Box::new(Echo));
            let t = sim.add_node(
                "timers",
                iface,
                Box::new(TimerNode {
                    fired: Vec::new(),
                    cancel_me: None,
                }),
            );
            sim.add_node("pad2", iface, Box::new(Echo));
            sim.run_to_quiescence();
            let node: &TimerNode = sim.node_ref(t);
            let tags: Vec<u64> = node.fired.iter().map(|(t, _)| *t).collect();
            assert_eq!(tags, vec![1, 3], "timer 2 was cancelled (shards={shards})");
            assert_eq!(node.fired[0].1, SimTime::ZERO + SimDuration::from_millis(5));
            assert_eq!(node.fired[1].1, SimTime::ZERO + SimDuration::from_millis(9));
        }
    }

    #[test]
    fn loopback_connection_works_in_shard_engine() {
        // A node pinging itself exercises the loopback path (no cross-shard
        // traffic, rate capped by loopback_bps).
        let mut sim = sharded(5, 2, 1);
        let a = sim.add_node(
            "self",
            Iface::residential(),
            Box::new(Pinger {
                target: NodeId(1),
                payload: 512,
                reply_at: None,
                replies: 0,
            }),
        );
        let b = sim.add_node("echo", Iface::residential(), Box::new(Echo));
        assert_eq!(b, NodeId(1));
        sim.run_to_quiescence();
        let p: &Pinger = sim.node_ref(a);
        assert_eq!(p.replies, 1);
    }

    #[test]
    fn close_notifies_peer_in_other_shard() {
        struct Closer {
            target: NodeId,
        }
        impl Node for Closer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let c = ctx.connect(self.target, 80);
                ctx.send(c, vec![1, 2, 3]);
                ctx.close(c);
            }
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {}
        }
        struct Sink {
            msgs: u32,
            closed: u32,
        }
        impl Node for Sink {
            fn on_msg(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _msg: Vec<u8>) {
                self.msgs += 1;
            }
            fn on_conn_closed(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {
                self.closed += 1;
            }
        }
        let iface = Iface::symmetric(SimDuration::from_millis(1), 0);
        let mut sim = sharded(9, 2, 1);
        let sink = sim.add_node("sink", iface, Box::new(Sink { msgs: 0, closed: 0 }));
        sim.add_node("closer", iface, Box::new(Closer { target: sink }));
        sim.run_to_quiescence();
        let s: &Sink = sim.node_ref(sink);
        assert_eq!(s.msgs, 1, "queued message drains before close");
        assert_eq!(s.closed, 1, "peer sees on_conn_closed");
    }

    #[test]
    fn window_horizon_respects_limit_and_lookahead() {
        let gn = SimTime::ZERO + SimDuration::from_millis(10);
        let la = Some(SimDuration::from_millis(4));
        let far = SimTime::ZERO + SimDuration::from_secs(1);
        // horizon = gn + lookahead when the limit is far away
        assert_eq!(
            ShardedSim::window_horizon(gn, la, far),
            SimTime::ZERO + SimDuration::from_millis(14)
        );
        // exclusive cap at limit+1 so events AT the limit still run
        let near = SimTime::ZERO + SimDuration::from_millis(12);
        assert_eq!(
            ShardedSim::window_horizon(gn, la, near),
            SimTime(near.as_nanos() + 1)
        );
        // single shard / no cross-shard links: unbounded window to the cap
        assert_eq!(
            ShardedSim::window_horizon(gn, None, near),
            SimTime(near.as_nanos() + 1)
        );
    }
}
