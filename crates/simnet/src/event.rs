//! The event queue at the heart of the simulator.
//!
//! Events are ordered by `(time, sequence)`. The sequence number makes the
//! ordering *total* and insertion-ordered among simultaneous events, which is
//! what makes whole-simulation runs reproducible byte-for-byte.

use crate::fault::FaultAction;
use crate::node::{ConnId, NodeId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Direction of travel over a connection, from the perspective of the
/// connection's initiator: `Forward` is initiator→acceptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDir {
    /// Initiator → acceptor.
    Forward,
    /// Acceptor → initiator.
    Backward,
}

impl FlowDir {
    /// The opposite direction.
    pub fn flip(self) -> FlowDir {
        match self {
            FlowDir::Forward => FlowDir::Backward,
            FlowDir::Backward => FlowDir::Forward,
        }
    }
}

/// Internal simulator events.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// The connect handshake reached the acceptor (SYN arrival).
    ConnSynArrive { conn: ConnId },
    /// The connect handshake completed at the initiator.
    ConnEstablished { conn: ConnId },
    /// A chunk finished serializing onto the bottleneck link.
    ChunkDone { conn: ConnId, dir: FlowDir },
    /// A complete message arrived at the receiving endpoint.
    MsgArrive {
        conn: ConnId,
        dir: FlowDir,
        msg: Vec<u8>,
    },
    /// A graceful close arrived at the receiving endpoint.
    CloseArrive { conn: ConnId, dir: FlowDir },
    /// A node timer fired. `inc` is the incarnation of the scheduling node:
    /// timers armed before a crash never fire on the restarted incarnation.
    Timer {
        node: NodeId,
        id: u64,
        tag: u64,
        inc: u32,
    },
    /// `node` abruptly learned its peer on `conn` vanished (crash or refused
    /// connect) — delivered as `on_conn_closed`, like a TCP reset.
    PeerGone { conn: ConnId, node: NodeId },
    /// A scheduled fault-plan action fires.
    Fault { action: FaultAction },
}

pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of simulator events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Pre-size for a busy run: even a small Tor network keeps hundreds of
    /// chunk/arrival events in flight, and growing the heap mid-run both
    /// reallocates and memmoves every pending event.
    const INITIAL_CAPACITY: usize = 1024;

    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(Self::INITIAL_CAPACITY),
            next_seq: 0,
        }
    }

    /// Schedule `kind` at absolute time `t`.
    pub fn push(&mut self, t: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time: t, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// True if the earliest pending event is a `MsgArrive` on `conn`/`dir`
    /// at exactly `time` — the precondition for coalescing it into the
    /// delivery batch the event loop is forming. Only *adjacent* events are
    /// ever coalesced, so relative order with any interleaved event is
    /// preserved.
    pub fn peek_is_arrival(&self, time: SimTime, conn: ConnId, dir: FlowDir) -> bool {
        match self.heap.peek() {
            Some(e) => {
                e.time == time
                    && matches!(e.kind,
                        EventKind::MsgArrive { conn: c, dir: d, .. } if c == conn && d == dir)
            }
            None => false,
        }
    }

    /// Number of pending events.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Ids of every timer event still in the queue (fired or not), in
    /// unspecified order. Used to prune the cancelled-timer tombstone set.
    pub fn live_timer_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.heap.iter().filter_map(|e| match e.kind {
            EventKind::Timer { id, .. } => Some(id),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        q.push(
            t(3),
            EventKind::Timer {
                node: NodeId(0),
                id: 3,
                tag: 3,
                inc: 0,
            },
        );
        q.push(
            t(1),
            EventKind::Timer {
                node: NodeId(0),
                id: 1,
                tag: 1,
                inc: 0,
            },
        );
        q.push(
            t(2),
            EventKind::Timer {
                node: NodeId(0),
                id: 2,
                tag: 2,
                inc: 0,
            },
        );
        let mut tags = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::Timer { tag, .. } = e.kind {
                tags.push(tag);
            }
        }
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for tag in 0..10 {
            q.push(
                SimTime::ZERO,
                EventKind::Timer {
                    node: NodeId(0),
                    id: tag,
                    tag,
                    inc: 0,
                },
            );
        }
        let mut tags = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::Timer { tag, .. } = e.kind {
                tags.push(tag);
            }
        }
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(
            SimTime(50),
            EventKind::Timer {
                node: NodeId(0),
                id: 0,
                tag: 0,
                inc: 0,
            },
        );
        q.push(
            SimTime(10),
            EventKind::Timer {
                node: NodeId(0),
                id: 1,
                tag: 1,
                inc: 0,
            },
        );
        assert_eq!(q.peek_time(), Some(SimTime(10)));
    }

    use proptest::prelude::*;

    proptest! {
        /// Pops come out in strictly increasing `(time, seq)` order for any
        /// push schedule — the invariant every deterministic run rests on.
        #[test]
        fn pops_totally_ordered(times in proptest::collection::vec(0u64..64, 1..256)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(
                    SimTime(t),
                    EventKind::Timer { node: NodeId(0), id: i as u64, tag: i as u64, inc: 0 },
                );
            }
            let mut last: Option<(SimTime, u64)> = None;
            let mut popped = 0usize;
            while let Some(e) = q.pop() {
                let key = (e.time, e.seq);
                if let Some(prev) = last {
                    prop_assert!(key > prev, "pop order regressed: {prev:?} then {key:?}");
                }
                // Equal times pop in insertion order (seq doubles as the
                // per-queue insertion index).
                if let EventKind::Timer { id, .. } = e.kind {
                    prop_assert_eq!(times[id as usize], e.time.0);
                }
                last = Some(key);
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
            prop_assert!(q.is_empty());
        }

        /// `live_timer_ids` reports exactly the timers still queued, at every
        /// point of a partial drain — the contract tombstone pruning needs.
        #[test]
        fn live_timer_ids_track_drain(
            times in proptest::collection::vec(0u64..32, 0..64),
            drain in 0usize..80,
        ) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(
                    SimTime(t),
                    EventKind::Timer { node: NodeId(0), id: i as u64, tag: 0, inc: 0 },
                );
                // Interleave non-timer events: they must never be reported.
                q.push(SimTime(t), EventKind::ConnEstablished { conn: ConnId(i as u64) });
            }
            let mut gone = std::collections::HashSet::new();
            for _ in 0..drain.min(q.len()) {
                if let Some(e) = q.pop() {
                    if let EventKind::Timer { id, .. } = e.kind {
                        gone.insert(id);
                    }
                }
            }
            let live: std::collections::HashSet<u64> = q.live_timer_ids().collect();
            let expect: std::collections::HashSet<u64> = (0..times.len() as u64)
                .filter(|id| !gone.contains(id))
                .collect();
            prop_assert_eq!(live, expect);
        }
    }
}
