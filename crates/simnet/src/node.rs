//! The [`Node`] trait — the unit of behavior in the simulator — and the
//! [`Ctx`] handle nodes use to act on the world.
//!
//! A node is a state machine driven by callbacks: connection lifecycle
//! events, message arrivals and timers. All side effects (connecting,
//! sending, scheduling timers) go through [`Ctx`], which borrows the
//! simulator core; this keeps nodes pure state and the event loop the single
//! owner of time.

use crate::event::EventKind;
use crate::sim::SimCore;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use std::any::Any;
use std::fmt;

/// Identifies a node in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a connection between two nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Debug for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a scheduled timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// Object-safe upcast to [`Any`], blanket-implemented for every `'static`
/// type so [`Node`] implementors get downcasting for free.
pub trait AsAny: Any {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Behavior attached to a simulated host.
///
/// All methods have no-op defaults except [`Node::on_msg`]; most nodes only
/// care about messages and timers.
pub trait Node: AsAny {
    /// Called once when the simulation starts (time zero, insertion order).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// An inbound connection request arrived on `port`; the connection is
    /// usable for sending from this side immediately.
    fn on_conn_open(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _peer: NodeId, _port: u16) {}

    /// An outbound [`Ctx::connect`] completed its handshake; the connection
    /// is now usable for sending from this side.
    fn on_conn_established(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _peer: NodeId) {}

    /// A complete message arrived on `conn`.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>);

    /// A run of messages arrived on `conn` at the same instant, in delivery
    /// order. The event loop coalesces adjacent same-tick arrivals on one
    /// connection and direction into a single call, so a node that can
    /// amortize per-message work across a batch (e.g. a relay batching cell
    /// crypto) may override this. Every message in the batch had already
    /// arrived before the first was dispatched, so the default — delivering
    /// each through [`Node::on_msg`] in order — is always equivalent.
    fn on_msgs(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msgs: Vec<Vec<u8>>) {
        for msg in msgs {
            self.on_msg(ctx, conn, msg);
        }
    }

    /// The peer closed `conn`; no further messages will arrive on it.
    fn on_conn_closed(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {}

    /// A timer set with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// The node's host crashed (fault injection): every connection it held
    /// is gone and no timer it armed will ever fire. Implementations should
    /// discard volatile state here; anything modeling durable storage (disk,
    /// sealed state) survives. No `Ctx` is provided — a crashed host cannot
    /// act on the network. The default does nothing.
    fn on_crash(&mut self) {}

    /// The host restarted after a crash, under a new incarnation. The
    /// default re-runs [`Node::on_start`].
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.on_start(ctx);
    }

    /// Fold any locally batched telemetry into the process metrics. The
    /// simulator calls this for every node after each `run_until` event
    /// loop — out of the per-event hot path, and before any snapshot a
    /// bench trial captures. Nodes that accumulate per-cell counters in
    /// plain fields (e.g. `tor-net`'s `RelayCore`) override this; the
    /// default does nothing.
    fn flush_telemetry(&mut self) {}
}

/// The handle through which a node (or the experiment harness) acts on the
/// simulated world: connect, send, close, set timers, read the clock, draw
/// randomness.
pub struct Ctx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) me: NodeId,
}

impl<'a> Ctx<'a> {
    /// The node this context belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The simulation's deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// Open a connection to `dst`'s `port`. The returned [`ConnId`] is usable
    /// for [`Ctx::send`] immediately — messages queue until the handshake
    /// completes one RTT later ([`Node::on_conn_established`]).
    pub fn connect(&mut self, dst: NodeId, port: u16) -> ConnId {
        self.core.connect(self.me, dst, port)
    }

    /// Queue `msg` for reliable, ordered delivery on `conn`.
    ///
    /// Returns `false` (dropping the message) if the connection is closed or
    /// unknown, or if this node is not an endpoint — a node can never write
    /// to another node's connection.
    pub fn send(&mut self, conn: ConnId, msg: Vec<u8>) -> bool {
        self.core.send(self.me, conn, msg)
    }

    /// Take a cleared buffer with at least `cap` capacity from the run's
    /// shared pool, allocating only when the pool is empty. Pair with
    /// [`Ctx::recycle_buf`] to keep per-message sends allocation-free in
    /// steady state.
    pub fn take_buf(&mut self, cap: usize) -> Vec<u8> {
        self.core.pool.take(cap)
    }

    /// Return a buffer (typically a consumed `on_msg` payload) to the pool
    /// for reuse by later [`Ctx::take_buf`] calls.
    pub fn recycle_buf(&mut self, buf: Vec<u8>) {
        self.core.pool.put(buf);
    }

    /// Gracefully close `conn`: queued messages drain, then the peer sees
    /// [`Node::on_conn_closed`].
    pub fn close(&mut self, conn: ConnId) {
        self.core.close(self.me, conn);
    }

    /// Schedule [`Node::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.core.next_timer_id;
        self.core.next_timer_id += 1;
        self.core.pending_timers += 1;
        let at = self.core.now + delay;
        let inc = self.core.incarnation_of(self.me);
        self.core.queue.push(
            at,
            EventKind::Timer {
                node: self.me,
                id,
                tag,
                inc,
            },
        );
        TimerId(id)
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.core.cancelled_timers.insert(id.0);
        // Cancelling an already-popped timer leaves a tombstone nothing will
        // ever collect; when tombstones outnumber timers actually in the
        // queue by a margin, sweep out the dead ones.
        if self.core.cancelled_timers.len() > self.core.pending_timers + 64 {
            let live: std::collections::BTreeSet<u64> = self.core.queue.live_timer_ids().collect();
            self.core.cancelled_timers.retain(|t| live.contains(t));
            self.core.timer_sweeps += 1;
        }
    }

    /// The remote endpoint of `conn`, if this node is an endpoint of it.
    pub fn peer_of(&self, conn: ConnId) -> Option<NodeId> {
        self.core.peer_of(self.me, conn)
    }
}
