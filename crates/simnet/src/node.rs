//! The [`Node`] trait — the unit of behavior in the simulator — and the
//! [`Ctx`] handle nodes use to act on the world.
//!
//! A node is a state machine driven by callbacks: connection lifecycle
//! events, message arrivals and timers. All side effects (connecting,
//! sending, scheduling timers) go through [`Ctx`], which borrows the
//! engine core; this keeps nodes pure state and the event loop the single
//! owner of time. `Ctx` is engine-agnostic: the same node code runs on the
//! classic serial engine and on the sharded conservative-PDES engine
//! (`crate::shard`) without change.

use crate::event::EventKind;
use crate::sim::SimCore;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use std::any::Any;
use std::fmt;

/// Identifies a node in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a connection between two nodes.
///
/// The value is opaque to nodes: the serial engine hands out sequential ids,
/// the sharded engine packs `(initiator, per-initiator counter)` so ids are
/// partition-independent. Only equality/ordering may be relied on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Debug for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a scheduled timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// Object-safe upcast to [`Any`], blanket-implemented for every `'static`
/// type so [`Node`] implementors get downcasting for free.
pub trait AsAny: Any {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Behavior attached to a simulated host.
///
/// All methods have no-op defaults except [`Node::on_msg`]; most nodes only
/// care about messages and timers.
///
/// Nodes must be [`Send`]: the sharded engine moves whole shards (and the
/// nodes inside them) across worker threads between barrier windows. Nodes
/// are still never called concurrently with themselves — each lives in
/// exactly one shard, and a shard is driven by one thread per window.
pub trait Node: AsAny + Send {
    /// Called once when the simulation starts (time zero, insertion order).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// An inbound connection request arrived on `port`; the connection is
    /// usable for sending from this side immediately.
    fn on_conn_open(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _peer: NodeId, _port: u16) {}

    /// An outbound [`Ctx::connect`] completed its handshake; the connection
    /// is now usable for sending from this side.
    fn on_conn_established(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _peer: NodeId) {}

    /// A complete message arrived on `conn`.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>);

    /// A run of messages arrived on `conn` at the same instant, in delivery
    /// order. The event loop coalesces adjacent same-tick arrivals on one
    /// connection and direction into a single call, so a node that can
    /// amortize per-message work across a batch (e.g. a relay batching cell
    /// crypto) may override this. Every message in the batch had already
    /// arrived before the first was dispatched, so the default — delivering
    /// each through [`Node::on_msg`] in order — is always equivalent.
    fn on_msgs(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msgs: Vec<Vec<u8>>) {
        for msg in msgs {
            self.on_msg(ctx, conn, msg);
        }
    }

    /// The peer closed `conn`; no further messages will arrive on it.
    fn on_conn_closed(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {}

    /// A timer set with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// The node's host crashed (fault injection): every connection it held
    /// is gone and no timer it armed will ever fire. Implementations should
    /// discard volatile state here; anything modeling durable storage (disk,
    /// sealed state) survives. No `Ctx` is provided — a crashed host cannot
    /// act on the network. The default does nothing.
    fn on_crash(&mut self) {}

    /// The host restarted after a crash, under a new incarnation. The
    /// default re-runs [`Node::on_start`].
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.on_start(ctx);
    }

    /// Fold any locally batched telemetry into the process metrics. The
    /// simulator calls this for every node after each `run_until` event
    /// loop — out of the per-event hot path, and before any snapshot a
    /// bench trial captures. Nodes that accumulate per-cell counters in
    /// plain fields (e.g. `tor-net`'s `RelayCore`) override this; the
    /// default does nothing.
    fn flush_telemetry(&mut self) {}
}

/// Which engine a [`Ctx`] is borrowing. Nodes never see this: every public
/// `Ctx` method dispatches on it, so node code is engine-agnostic.
pub(crate) enum CtxInner<'a> {
    /// The classic single-event-loop engine.
    Serial(&'a mut SimCore),
    /// One shard of the conservative-PDES engine.
    Shard(crate::shard::ShardCtx<'a>),
}

/// The handle through which a node (or the experiment harness) acts on the
/// simulated world: connect, send, close, set timers, read the clock, draw
/// randomness.
pub struct Ctx<'a> {
    pub(crate) inner: CtxInner<'a>,
    pub(crate) me: NodeId,
}

impl<'a> Ctx<'a> {
    /// The node this context belongs to.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            CtxInner::Serial(core) => core.now,
            CtxInner::Shard(sc) => sc.shard.now,
        }
    }

    /// A deterministic random number generator.
    ///
    /// The serial engine has one run-global stream; the sharded engine gives
    /// each node its own stream seeded from `(run seed, node id)` so draws
    /// are independent of the partition and of dispatch interleaving.
    pub fn rng(&mut self) -> &mut StdRng {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Serial(core) => &mut core.rng,
            CtxInner::Shard(sc) => sc.shard.rng_for(sc.shared, me),
        }
    }

    /// Open a connection to `dst`'s `port`. The returned [`ConnId`] is usable
    /// for [`Ctx::send`] immediately — messages queue until the handshake
    /// completes one RTT later ([`Node::on_conn_established`]).
    pub fn connect(&mut self, dst: NodeId, port: u16) -> ConnId {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Serial(core) => core.connect(me, dst, port),
            CtxInner::Shard(sc) => sc.shard.connect(sc.shared, me, dst, port),
        }
    }

    /// Queue `msg` for reliable, ordered delivery on `conn`.
    ///
    /// Returns `false` (dropping the message) if the connection is closed or
    /// unknown, or if this node is not an endpoint — a node can never write
    /// to another node's connection.
    pub fn send(&mut self, conn: ConnId, msg: Vec<u8>) -> bool {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Serial(core) => core.send(me, conn, msg),
            CtxInner::Shard(sc) => sc.shard.send(sc.shared, me, conn, msg),
        }
    }

    /// Take a cleared buffer with at least `cap` capacity from the engine's
    /// buffer pool (per shard on the sharded engine), allocating only when
    /// the pool is empty. Pair with [`Ctx::recycle_buf`] to keep per-message
    /// sends allocation-free in steady state.
    pub fn take_buf(&mut self, cap: usize) -> Vec<u8> {
        match &mut self.inner {
            CtxInner::Serial(core) => core.pool.take(cap),
            CtxInner::Shard(sc) => sc.shard.pool.take(cap),
        }
    }

    /// Return a buffer (typically a consumed `on_msg` payload) to the pool
    /// for reuse by later [`Ctx::take_buf`] calls.
    pub fn recycle_buf(&mut self, buf: Vec<u8>) {
        match &mut self.inner {
            CtxInner::Serial(core) => core.pool.put(buf),
            CtxInner::Shard(sc) => sc.shard.pool.put(buf),
        }
    }

    /// Gracefully close `conn`: queued messages drain, then the peer sees
    /// [`Node::on_conn_closed`].
    pub fn close(&mut self, conn: ConnId) {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Serial(core) => core.close(me, conn),
            CtxInner::Shard(sc) => sc.shard.close(sc.shared, me, conn),
        }
    }

    /// Schedule [`Node::on_timer`] with `tag` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let me = self.me;
        match &mut self.inner {
            CtxInner::Serial(core) => {
                let id = core.next_timer_id;
                core.next_timer_id += 1;
                core.pending_timers += 1;
                let at = core.now + delay;
                let inc = core.incarnation_of(me);
                core.queue.push(
                    at,
                    EventKind::Timer {
                        node: me,
                        id,
                        tag,
                        inc,
                    },
                );
                TimerId(id)
            }
            CtxInner::Shard(sc) => sc.shard.set_timer(me, delay, tag),
        }
    }

    /// Cancel a pending timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        match &mut self.inner {
            CtxInner::Serial(core) => {
                core.cancelled_timers.insert(id.0);
                // Cancelling an already-popped timer leaves a tombstone nothing
                // will ever collect; when tombstones outnumber timers actually
                // in the queue by a margin, sweep out the dead ones.
                if core.cancelled_timers.len() > core.pending_timers + 64 {
                    let live: std::collections::BTreeSet<u64> =
                        core.queue.live_timer_ids().collect();
                    core.cancelled_timers.retain(|t| live.contains(t));
                    core.timer_sweeps += 1;
                }
            }
            CtxInner::Shard(sc) => sc.shard.cancel_timer(id),
        }
    }

    /// The remote endpoint of `conn`, if this node is an endpoint of it.
    pub fn peer_of(&self, conn: ConnId) -> Option<NodeId> {
        let me = self.me;
        match &self.inner {
            CtxInner::Serial(core) => core.peer_of(me, conn),
            CtxInner::Shard(sc) => sc.shard.peer_of(me, conn),
        }
    }
}
