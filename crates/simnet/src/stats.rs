//! Small statistics helpers used by experiments: time series (per-client
//! bandwidth curves for Figure 5), histograms with quantiles, and summary
//! lines.

use crate::time::{SimDuration, SimTime};

/// A bucketed time series: values added at instants are summed into
/// fixed-width buckets. Used to compute per-second download rates.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimDuration,
    sums: Vec<f64>,
}

impl TimeSeries {
    /// Hard cap on bucket count. An instant this far past the series start
    /// is almost always a unit bug (nanoseconds passed as seconds, or a
    /// `SimTime::MAX` sentinel leaking in), and resizing toward it would
    /// silently try to allocate gigabytes. 2^20 one-second buckets is about
    /// 12 days of simulated time — far beyond any experiment here.
    pub const MAX_BUCKETS: usize = 1 << 20;

    /// New series with the given bucket width.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        TimeSeries {
            bucket,
            sums: Vec::new(),
        }
    }

    /// Add `value` at instant `t`.
    ///
    /// # Panics
    /// If `t` lands past [`TimeSeries::MAX_BUCKETS`] buckets — see the
    /// constant for why that is treated as a caller bug rather than grown.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_nanos() / self.bucket.as_nanos()) as usize;
        assert!(
            idx < Self::MAX_BUCKETS,
            "TimeSeries::add at {t:?} needs bucket {idx} (width {}), over the cap of {} buckets \
             — wrong bucket width, or a sentinel time from another run?",
            self.bucket,
            Self::MAX_BUCKETS,
        );
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
        }
        self.sums[idx] += value;
    }

    /// Bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Sum in each bucket, in time order.
    pub fn buckets(&self) -> &[f64] {
        &self.sums
    }

    /// Per-second rates: each bucket sum divided by the bucket width.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.bucket.as_secs_f64();
        self.sums.iter().map(|s| s / w).collect()
    }

    /// (bucket start time in seconds, rate per second) pairs.
    pub fn rate_points(&self) -> Vec<(f64, f64)> {
        let w = self.bucket.as_secs_f64();
        self.sums
            .iter()
            .enumerate()
            .map(|(i, s)| (i as f64 * w, s / w))
            .collect()
    }

    /// Total of all values added.
    pub fn total(&self) -> f64 {
        self.sums.iter().sum()
    }
}

/// A sample collection with quantile queries.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Add one sample.
    pub fn add(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation; 0.0 when fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Quantile `q` in `[0, 1]` by nearest-rank; 0.0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        self.samples[idx]
    }

    /// Minimum sample; 0.0 when empty.
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    /// Maximum sample; 0.0 when empty.
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// One-line summary of the distribution.
    pub fn summary(&mut self) -> Summary {
        Summary {
            n: self.len(),
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min(),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// A computed distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.n, self.mean, self.stddev, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_buckets_and_rates() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.add(SimTime::ZERO + SimDuration::from_millis(100), 500.0);
        ts.add(SimTime::ZERO + SimDuration::from_millis(900), 500.0);
        ts.add(SimTime::ZERO + SimDuration::from_millis(1500), 250.0);
        assert_eq!(ts.buckets(), &[1000.0, 250.0]);
        assert_eq!(ts.rates_per_sec(), vec![1000.0, 250.0]);
        assert_eq!(ts.total(), 1250.0);
        let pts = ts.rate_points();
        assert_eq!(pts[1], (1.0, 250.0));
    }

    #[test]
    fn time_series_accepts_times_up_to_the_cap() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        let last_ok = SimDuration::from_secs((TimeSeries::MAX_BUCKETS - 1) as u64);
        ts.add(SimTime::ZERO + last_ok, 1.0);
        assert_eq!(ts.buckets().len(), TimeSeries::MAX_BUCKETS);
        assert_eq!(ts.total(), 1.0);
    }

    #[test]
    #[should_panic(expected = "over the cap")]
    fn time_series_rejects_runaway_resize() {
        // Before the cap this tried to allocate one bucket per simulated
        // second until u64::MAX nanoseconds — an effectively unbounded
        // resize that aborted the process instead of panicking usefully.
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.add(SimTime::MAX, 1.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.add(v as f64);
        }
        assert_eq!(h.len(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        let p50 = h.quantile(0.5);
        assert!((50.0..=51.0).contains(&p50));
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.stddev(), 0.0);
        let s = h.summary();
        assert_eq!(s.n, 0);
    }

    #[test]
    fn summary_formats() {
        let mut h = Histogram::new();
        h.add(1.0);
        h.add(3.0);
        let s = h.summary();
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.to_string().contains("n=2"));
    }
}
