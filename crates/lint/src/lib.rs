//! `bento_lint` — workspace determinism & safety linter.
//!
//! A self-contained static-analysis pass over the workspace's Rust sources:
//! a hand-rolled lexer ([`lexer`]) strips comments/strings/char-literals,
//! then token-stream rules ([`rules`]) flag nondeterminism and safety
//! hazards. No external parser dependencies, consistent with the offline
//! `vendor/` policy.
//!
//! ## Rule catalog
//!
//! | Code  | Checks |
//! |-------|--------|
//! | BL000 | malformed suppression directives |
//! | BL001 | `HashMap`/`HashSet` in deterministic crates |
//! | BL002 | wall-clock (`Instant`/`SystemTime`) outside host-side crates |
//! | BL003 | ambient randomness (`thread_rng`, `from_entropy`, `OsRng`, …) |
//! | BL004 | `unsafe` without a preceding `// SAFETY:` comment |
//! | BL005 | `.unwrap()`/`.expect()` in fault-recovery paths |
//! | BL006 | telemetry instrument names: `[a-z0-9_.]+`, globally unique |
//!
//! ## Suppression
//!
//! `// bento-lint: allow(BL001) -- <reason>` silences the named rule(s) on
//! the comment's own line and the next token-bearing line. The reason is
//! mandatory; a directive without one is itself a BL000 diagnostic.
//!
//! ## Test code
//!
//! Everything at or below a file's first `#[cfg(test)]` is test code and is
//! not linted (in this workspace test modules are always the final item of
//! a file). `tests/`, `benches/`, and `vendor/` trees are never scanned.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

use config::{Config, Severity};
use lexer::{lex, Comment, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// One finding, ready to print as `file:line:col [code] message`.
#[derive(Debug, Clone)]
pub struct Diag {
    pub code: String,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{} {}] {}",
            self.file,
            self.line,
            self.col,
            self.code,
            self.severity.label(),
            self.message
        )
    }
}

/// Everything the per-file rules need to see.
pub struct FileCtx<'a> {
    pub rel_path: &'a str,
    pub crate_name: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a [Comment],
    /// Line of the first `#[cfg(test)]`; `u32::MAX` when the file has none.
    /// Diagnostics at or past this line are dropped.
    pub test_cutoff: u32,
}

/// A rule finding before severity/suppression filtering.
#[derive(Debug)]
pub struct RawDiag {
    pub code: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// One parsed suppression directive: which codes it allows, and which
/// source lines it covers (its own + the next token-bearing line).
#[derive(Debug, Clone)]
struct Suppression {
    codes: Vec<String>,
    lines: [u32; 2],
}

/// The result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings at `warn` or `deny`, sorted by (file, line, col, code).
    pub diags: Vec<Diag>,
}

impl Report {
    /// True when any `deny`-severity finding survived suppression —
    /// the process should exit non-zero.
    pub fn failed(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Deny)
    }

    pub fn deny_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }
}

/// Streaming analyzer: feed files with [`add_file`](Analyzer::add_file),
/// then [`finish`](Analyzer::finish) to resolve cross-file rules (BL006)
/// and get the sorted report.
pub struct Analyzer {
    cfg: Config,
    diags: Vec<Diag>,
    /// Telemetry registration sites for the cross-file uniqueness check.
    regs: Vec<rules::Registration>,
    /// Per-file suppression tables, kept so `finish` can filter the
    /// cross-file diagnostics too.
    supps: BTreeMap<String, Vec<Suppression>>,
}

impl Analyzer {
    pub fn new(cfg: Config) -> Analyzer {
        Analyzer {
            cfg,
            diags: Vec::new(),
            regs: Vec::new(),
            supps: BTreeMap::new(),
        }
    }

    /// Lex and lint one file. `rel_path` is workspace-relative with `/`
    /// separators (used in diagnostics and BL005 scoping); `crate_name` is
    /// the directory under `crates/` (used for per-crate rule scoping).
    pub fn add_file(&mut self, rel_path: &str, crate_name: &str, src: &str) {
        let lexed = lex(src);
        let test_cutoff = find_test_cutoff(&lexed.toks);
        let (supps, mut raw) = parse_suppressions(&lexed.comments, &lexed.toks);
        let ctx = FileCtx {
            rel_path,
            crate_name,
            toks: &lexed.toks,
            comments: &lexed.comments,
            test_cutoff,
        };
        raw.extend(rules::check_file(&ctx, &self.cfg));
        for reg in rules::registrations(&ctx) {
            // Registrations in test code never reach exported artifacts.
            if reg.line < test_cutoff {
                self.regs.push(rules::Registration {
                    file: rel_path.to_string(),
                    ..reg
                });
            }
        }
        for d in raw {
            // BL000 (malformed directive) is never itself suppressible and
            // applies even inside test modules — a broken directive is a
            // hygiene error wherever it sits.
            if d.code != "BL000" {
                if d.line >= test_cutoff {
                    continue;
                }
                if suppressed(&supps, d.code, d.line) {
                    continue;
                }
            }
            self.push(d.code, rel_path, d.line, d.col, d.message);
        }
        self.supps.insert(rel_path.to_string(), supps);
    }

    fn push(&mut self, code: &str, file: &str, line: u32, col: u32, message: String) {
        let severity = self.cfg.severity_of(code);
        if severity == Severity::Off {
            return;
        }
        self.diags.push(Diag {
            code: code.to_string(),
            severity,
            file: file.to_string(),
            line,
            col,
            message,
        });
    }

    /// Resolve cross-file rules and return the sorted report.
    pub fn finish(mut self) -> Report {
        // BL006 uniqueness: group registrations by name; every site beyond
        // the first (in file/line order) is a duplicate.
        let mut by_name: BTreeMap<String, Vec<rules::Registration>> = BTreeMap::new();
        for reg in std::mem::take(&mut self.regs) {
            by_name.entry(reg.name.clone()).or_default().push(reg);
        }
        let mut dup_diags = Vec::new();
        for (name, mut sites) in by_name {
            if sites.len() < 2 {
                continue;
            }
            sites.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
            let first = &sites[0];
            let origin = format!("{}:{}", first.file, first.line);
            for dup in &sites[1..] {
                let covered = self
                    .supps
                    .get(&dup.file)
                    .map(|s| suppressed(s, "BL006", dup.line))
                    .unwrap_or(false);
                if covered {
                    continue;
                }
                dup_diags.push((
                    dup.file.clone(),
                    dup.line,
                    dup.col,
                    format!("duplicate telemetry instrument name `{name}` (first registered at {origin})"),
                ));
            }
        }
        for (file, line, col, msg) in dup_diags {
            self.push("BL006", &file, line, col, msg);
        }
        self.diags.sort_by(|a, b| {
            (&a.file, a.line, a.col, &a.code).cmp(&(&b.file, b.line, b.col, &b.code))
        });
        Report { diags: self.diags }
    }
}

fn suppressed(supps: &[Suppression], code: &str, line: u32) -> bool {
    supps
        .iter()
        .any(|s| s.lines.contains(&line) && s.codes.iter().any(|c| c == code))
}

/// Line of the first `#[cfg(test)]` token sequence, or `u32::MAX`.
fn find_test_cutoff(toks: &[Tok]) -> u32 {
    for w in toks.windows(5) {
        if w[0].kind == TokKind::Punct
            && w[0].text == "#"
            && w[1].text == "["
            && w[2].text == "cfg"
            && w[3].text == "("
            && w[4].text == "test"
        {
            return w[0].line;
        }
    }
    u32::MAX
}

/// Parse suppression directives out of the comment table. Returns the
/// suppression table plus BL000 diagnostics for malformed directives.
fn parse_suppressions(comments: &[Comment], toks: &[Tok]) -> (Vec<Suppression>, Vec<RawDiag>) {
    let mut supps = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        let Some(rest) = c.text.split("bento-lint:").nth(1) else {
            continue;
        };
        match parse_directive(rest) {
            Some(codes) => {
                let next_tok_line = toks
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.line)
                    .unwrap_or(c.line);
                supps.push(Suppression {
                    codes,
                    lines: [c.line, next_tok_line],
                });
            }
            None => diags.push(RawDiag {
                code: "BL000",
                line: c.line,
                col: c.col,
                message: "malformed suppression: expected \
                          `// bento-lint: allow(BLxxx) -- reason`"
                    .to_string(),
            }),
        }
    }
    (supps, diags)
}

/// `" allow(BL001, BL005) -- reason"` → `["BL001", "BL005"]`.
fn parse_directive(rest: &str) -> Option<Vec<String>> {
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (codes_str, rest) = rest.split_once(')')?;
    let codes: Vec<String> = codes_str.split(',').map(|c| c.trim().to_string()).collect();
    if codes.is_empty() || !codes.iter().all(|c| is_rule_code(c)) {
        return None;
    }
    let rest = rest.trim_start();
    let reason = rest.strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(codes)
}

fn is_rule_code(c: &str) -> bool {
    c.len() == 5 && c.starts_with("BL") && c[2..].bytes().all(|b| b.is_ascii_digit())
}

/// Walk `root`'s `crates/*/src` trees (sorted, deterministic) and lint every
/// `.rs` file. This is the whole-workspace entry point shared by the binary
/// and the self-test.
pub fn scan_workspace(root: &Path, cfg: Config) -> Result<Report, String> {
    let mut analyzer = Analyzer::new(cfg);
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let mut files = Vec::new();
        collect_rs(&crate_dir.join("src"), &mut files)?;
        files.sort();
        for f in files {
            let src = std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            analyzer.add_file(&rel, &crate_name, &src);
        }
    }
    Ok(analyzer.finish())
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(crate_name: &str, src: &str) -> Vec<Diag> {
        let mut a = Analyzer::new(Config::default());
        a.add_file("crates/x/src/lib.rs", crate_name, src);
        a.finish().diags
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "\
            // bento-lint: allow(BL001) -- membership-only scratch set\n\
            let m = HashMap::new();\n\
            let n = HashMap::new();\n";
        let diags = run("simnet", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let src = "let m = HashMap::new(); // bento-lint: allow(BL001) -- scratch\n";
        assert!(run("simnet", src).is_empty());
    }

    #[test]
    fn missing_reason_is_bl000() {
        let src = "// bento-lint: allow(BL001)\nlet m = HashMap::new();\n";
        let diags = run("simnet", src);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"BL000"), "{diags:?}");
        assert!(
            codes.contains(&"BL001"),
            "directive must not suppress: {diags:?}"
        );
    }

    #[test]
    fn test_modules_are_not_linted() {
        let src = "\
            pub fn live() {}\n\
            #[cfg(test)]\n\
            mod tests {\n\
                use std::collections::HashMap;\n\
            }\n";
        assert!(run("tor-net", src).is_empty());
    }

    #[test]
    fn severity_off_drops_and_warn_does_not_fail() {
        let mut cfg = Config::default();
        cfg.severity.insert("BL001".into(), Severity::Warn);
        let mut a = Analyzer::new(cfg);
        a.add_file("crates/x/src/lib.rs", "core", "let m = HashMap::new();");
        let rep = a.finish();
        assert_eq!(rep.diags.len(), 1);
        assert!(!rep.failed());
    }

    #[test]
    fn duplicate_instrument_names_across_files() {
        let mut a = Analyzer::new(Config::default());
        a.add_file(
            "crates/a/src/lib.rs",
            "a",
            r#"static T: telemetry::Counter = telemetry::Counter::new("x.events");"#,
        );
        a.add_file(
            "crates/b/src/lib.rs",
            "b",
            r#"static T: telemetry::Counter = telemetry::Counter::new("x.events");"#,
        );
        let rep = a.finish();
        assert_eq!(rep.diags.len(), 1, "{:?}", rep.diags);
        assert_eq!(rep.diags[0].file, "crates/b/src/lib.rs");
        assert!(rep.diags[0].message.contains("crates/a/src/lib.rs:1"));
    }
}
