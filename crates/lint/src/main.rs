//! `bento_lint` — run the workspace determinism & safety linter.
//!
//! ```text
//! bento_lint [--root <workspace>] [--config <lint.toml>]
//! ```
//!
//! Walks `crates/*/src/**/*.rs` (sorted — output order is deterministic),
//! prints `file:line:col [code severity] message` per finding, and exits 1
//! when any `deny`-severity finding survives suppression.

#![forbid(unsafe_code)]

use lint::config::Config;
use lint::scan_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--help" | "-h" => {
                eprintln!("usage: bento_lint [--root <workspace>] [--config <lint.toml>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // If the default root has no crates/, try the workspace the binary was
    // built from so `cargo run -p lint` works from any cwd.
    if !root.join("crates").is_dir() {
        let manifest_ws = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        if manifest_ws.join("crates").is_dir() {
            root = manifest_ws;
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bento_lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bento_lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };

    let report = match scan_workspace(&root, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bento_lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diags {
        println!("{d}");
    }
    let denies = report.deny_count();
    let warns = report.diags.len() - denies;
    if report.failed() {
        println!("bento_lint: FAILED — {denies} error(s), {warns} warning(s)");
        ExitCode::FAILURE
    } else {
        println!("bento_lint: ok — 0 errors, {warns} warning(s)");
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("bento_lint: {err}");
    eprintln!("usage: bento_lint [--root <workspace>] [--config <lint.toml>]");
    ExitCode::from(2)
}
