//! The token-stream rules (BL001–BL006).
//!
//! Each rule walks the lexed token stream of one file; cross-file state
//! (BL006 uniqueness) is collected here but resolved in `lib.rs::finish`.
//! Rules never look inside string/char literals or comments — the lexer
//! already atomized those — so `// a HashMap of ...` or `"Instant"` can
//! never trip a check.

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::{FileCtx, RawDiag};

/// A telemetry instrument registration site (for the BL006 cross-file
/// uniqueness check).
#[derive(Debug, Clone)]
pub struct Registration {
    pub name: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// Idents that construct or name the hash-ordered collections BL001 bans.
const HASH_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];

/// Wall-clock types (BL002).
const WALL_CLOCK: [&str; 2] = ["Instant", "SystemTime"];

/// Ambient-randomness entry points (BL003): anything that seeds or draws
/// outside the sim's deterministic RNG stream.
const AMBIENT_RNG: [&str; 5] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

/// Telemetry instrument types whose `::new("name")` registers a global
/// instrument (BL006). `LogHistogram`/`Histogram` take no name and are not
/// registration sites.
const INSTRUMENT_TYPES: [&str; 3] = ["Counter", "Gauge", "Span"];

/// Run all per-file rules. Test-region and suppression filtering happens in
/// the caller.
pub fn check_file(ctx: &FileCtx<'_>, cfg: &Config) -> Vec<RawDiag> {
    let mut out = Vec::new();
    bl001_hash_collections(ctx, cfg, &mut out);
    bl002_wall_clock(ctx, cfg, &mut out);
    bl003_ambient_randomness(ctx, &mut out);
    bl004_unsafe_needs_safety_comment(ctx, &mut out);
    bl005_unwrap_in_recovery_paths(ctx, cfg, &mut out);
    bl006_instrument_name_syntax(ctx, &mut out);
    out
}

fn is_ident(t: &Tok, names: &[&str]) -> bool {
    t.kind == TokKind::Ident && names.iter().any(|n| t.text == *n)
}

/// BL001: no `HashMap`/`HashSet` in deterministic crates. Any mention —
/// import, construction, type position — counts: if the type is present at
/// all, its iteration order can leak into the simulation.
fn bl001_hash_collections(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<RawDiag>) {
    if !cfg.deterministic_crates.iter().any(|c| c == ctx.crate_name) {
        return;
    }
    for t in ctx.toks {
        if is_ident(t, &HASH_COLLECTIONS) {
            out.push(RawDiag {
                code: "BL001",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` in deterministic crate `{}`: hash iteration order can leak \
                     into the simulation — use BTree{} or suppress with a reason",
                    t.text,
                    ctx.crate_name,
                    &t.text[4..],
                ),
            });
        }
    }
}

/// BL002: no wall-clock reads outside the host-side crates. Sim code must
/// take time from `SimTime`, never `std::time`.
fn bl002_wall_clock(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<RawDiag>) {
    if cfg
        .wallclock_allowed_crates
        .iter()
        .any(|c| c == ctx.crate_name)
    {
        return;
    }
    for t in ctx.toks {
        if is_ident(t, &WALL_CLOCK) {
            out.push(RawDiag {
                code: "BL002",
                line: t.line,
                col: t.col,
                message: format!(
                    "wall-clock type `{}` in crate `{}`: sim-visible code must use \
                     SimTime (wall clock is allowed only in host-side crates)",
                    t.text, ctx.crate_name,
                ),
            });
        }
    }
}

/// BL003: no ambient randomness anywhere in the workspace — every draw must
/// flow from the sim's seeded RNG.
fn bl003_ambient_randomness(ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
    for t in ctx.toks {
        if is_ident(t, &AMBIENT_RNG) {
            out.push(RawDiag {
                code: "BL003",
                line: t.line,
                col: t.col,
                message: format!(
                    "ambient randomness `{}`: all RNG must be seeded from the \
                     simulation's StdRng",
                    t.text,
                ),
            });
        }
    }
}

/// BL004: every `unsafe` keyword (block, fn, impl, trait) must have a
/// comment containing `SAFETY:` on the same line or within the 3 lines
/// above it.
fn bl004_unsafe_needs_safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
    for t in ctx.toks {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let justified = ctx
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !justified {
            out.push(RawDiag {
                code: "BL004",
                line: t.line,
                col: t.col,
                message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            });
        }
    }
}

/// BL005: no `.unwrap()` / `.expect(` in the fault-recovery files — those
/// paths promise graceful degradation, and a panic there turns a recoverable
/// fault into a crash.
fn bl005_unwrap_in_recovery_paths(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<RawDiag>) {
    if !cfg.recovery_paths.iter().any(|p| ctx.rel_path.ends_with(p)) {
        return;
    }
    for w in ctx.toks.windows(3) {
        let dot = w[0].kind == TokKind::Punct && w[0].text == ".";
        let call = w[1].kind == TokKind::Ident && (w[1].text == "unwrap" || w[1].text == "expect");
        let paren = w[2].kind == TokKind::Punct && w[2].text == "(";
        if dot && call && paren {
            out.push(RawDiag {
                code: "BL005",
                line: w[1].line,
                col: w[1].col,
                message: format!(
                    "`.{}()` in fault-recovery path: handle the failure or suppress \
                     with a reason proving it cannot panic",
                    w[1].text,
                ),
            });
        }
    }
}

/// BL006 (local half): instrument names must match `[a-z0-9_.]+`. The
/// global-uniqueness half runs in `Analyzer::finish` over the registrations
/// collected by [`registrations`].
fn bl006_instrument_name_syntax(ctx: &FileCtx<'_>, out: &mut Vec<RawDiag>) {
    for reg in registrations(ctx) {
        let ok = !reg.name.is_empty()
            && reg
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.');
        if !ok {
            out.push(RawDiag {
                code: "BL006",
                line: reg.line,
                col: reg.col,
                message: format!(
                    "telemetry instrument name `{}` must match [a-z0-9_.]+",
                    reg.name,
                ),
            });
        }
    }
}

/// All `Counter::new("…")` / `Gauge::new("…")` / `Span::new("…")` sites with
/// a literal name. Calls with a non-literal argument (e.g. `Counter::new(name)`
/// inside the telemetry crate's own constructors) are not registration sites.
pub fn registrations(ctx: &FileCtx<'_>) -> Vec<Registration> {
    let mut out = Vec::new();
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !is_ident(&toks[i], &INSTRUMENT_TYPES) {
            continue;
        }
        let Some(w) = toks.get(i + 1..i + 6) else {
            continue;
        };
        let path_sep = w[0].text == ":" && w[1].text == ":";
        let is_new = w[2].kind == TokKind::Ident && w[2].text == "new";
        let open = w[3].text == "(";
        let lit = w[4].kind == TokKind::Str;
        if path_sep && is_new && open && lit {
            out.push(Registration {
                name: w[4].text.clone(),
                file: ctx.rel_path.to_string(),
                line: w[4].line,
                col: w[4].col,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_diags(crate_name: &str, rel_path: &str, src: &str) -> Vec<RawDiag> {
        let lexed = lex(src);
        let ctx = FileCtx {
            rel_path,
            crate_name,
            toks: &lexed.toks,
            comments: &lexed.comments,
            test_cutoff: u32::MAX,
        };
        check_file(&ctx, &Config::default())
    }

    #[test]
    fn bl001_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            ctx_diags("tor-net", "crates/tor-net/src/x.rs", src).len(),
            1
        );
        assert!(ctx_diags("bench", "crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn bl002_allows_host_side_crates() {
        let src = "let t = std::time::Instant::now();";
        assert_eq!(ctx_diags("simnet", "crates/simnet/src/x.rs", src).len(), 1);
        assert!(ctx_diags("bench", "crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn bl003_is_workspace_wide() {
        let src = "let mut r = rand::thread_rng();";
        assert_eq!(ctx_diags("bench", "crates/bench/src/x.rs", src).len(), 1);
    }

    #[test]
    fn bl004_accepts_safety_comment_within_three_lines() {
        let bad = "unsafe { core::hint::unreachable_unchecked() }";
        let good = "// SAFETY: checked i < len above\nunsafe { x.get_unchecked(i) }";
        let far = "// SAFETY: too far\n\n\n\n\nunsafe { x() }";
        assert_eq!(ctx_diags("wfp", "crates/wfp/src/x.rs", bad).len(), 1);
        assert!(ctx_diags("wfp", "crates/wfp/src/x.rs", good).is_empty());
        assert_eq!(ctx_diags("wfp", "crates/wfp/src/x.rs", far).len(), 1);
    }

    #[test]
    fn bl005_scopes_to_recovery_paths() {
        let src = "let v = maybe.unwrap(); let w = maybe2.expect(\"why\");";
        let hits = ctx_diags("tor-net", "crates/tor-net/src/retry.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(ctx_diags("tor-net", "crates/tor-net/src/hs.rs", src).is_empty());
        // `unwrap_or` is a different identifier and must not match.
        let soft = "let v = maybe.unwrap_or(0);";
        assert!(ctx_diags("tor-net", "crates/tor-net/src/retry.rs", soft).is_empty());
    }

    #[test]
    fn bl006_checks_name_syntax() {
        let bad = r#"static T: telemetry::Counter = telemetry::Counter::new("Tor Cells!");"#;
        let good = r#"static T: telemetry::Counter = telemetry::Counter::new("tor.cells_in");"#;
        assert_eq!(ctx_diags("relay", "crates/x/src/x.rs", bad).len(), 1);
        assert!(ctx_diags("relay", "crates/x/src/x.rs", good).is_empty());
    }

    #[test]
    fn bl006_ignores_non_literal_constructors() {
        let src = "let c = Counter::new(name);";
        let lexed = lex(src);
        let ctx = FileCtx {
            rel_path: "crates/telemetry/src/lib.rs",
            crate_name: "telemetry",
            toks: &lexed.toks,
            comments: &lexed.comments,
            test_cutoff: u32::MAX,
        };
        assert!(registrations(&ctx).is_empty());
    }
}
