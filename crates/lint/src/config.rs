//! `lint.toml` — a hand-rolled parser for the small TOML subset the linter
//! needs (sections, string values, string arrays), consistent with the
//! workspace's no-external-deps policy.

use std::collections::BTreeMap;

/// What a rule's diagnostics do to the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Report and fail the run.
    Deny,
    /// Report but do not fail.
    Warn,
    /// Rule disabled.
    Off,
}

impl Severity {
    fn parse(s: &str) -> Option<Severity> {
        match s {
            "deny" => Some(Severity::Deny),
            "warn" => Some(Severity::Warn),
            "off" => Some(Severity::Off),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Off => "off",
        }
    }
}

/// Linter configuration. Defaults match the shipped `lint.toml`; the file
/// only needs to state deviations.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rule code (`"BL001"`) → severity. Missing codes are `Deny`.
    pub severity: BTreeMap<String, Severity>,
    /// Crates (by `crates/<dir>` name) whose sim-visible state must use
    /// ordered collections (BL001 scope).
    pub deterministic_crates: Vec<String>,
    /// Crates allowed to read the wall clock (BL002 exemptions).
    pub wallclock_allowed_crates: Vec<String>,
    /// Path fragments naming fault-recovery files (BL005 scope). A file is
    /// in scope when its workspace-relative path ends with one of these.
    pub recovery_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            severity: BTreeMap::new(),
            deterministic_crates: ["simnet", "tor-net", "core", "functions", "onion-crypto"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            wallclock_allowed_crates: ["bench", "telemetry", "lint"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            recovery_paths: [
                "tor-net/src/retry.rs",
                "tor-net/src/client.rs",
                "core/src/server.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

impl Config {
    pub fn severity_of(&self, code: &str) -> Severity {
        self.severity.get(code).copied().unwrap_or(Severity::Deny)
    }

    /// Parse `lint.toml` text over the defaults. Unknown sections and keys
    /// are errors — a typo'd scope silently linting nothing is worse than a
    /// hard failure.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "severity" | "bl001" | "bl002" | "bl005" => {}
                    other => return Err(format!("lint.toml:{lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), key) {
                ("severity", code) => {
                    let sev = parse_string(value)
                        .and_then(|s| Severity::parse(&s))
                        .ok_or_else(|| {
                            format!(
                                "lint.toml:{lineno}: severity must be \"deny\", \"warn\" or \"off\""
                            )
                        })?;
                    cfg.severity.insert(code.to_string(), sev);
                }
                ("bl001", "deterministic_crates") => {
                    cfg.deterministic_crates = parse_array(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: expected a string array"))?;
                }
                ("bl002", "wallclock_allowed_crates") => {
                    cfg.wallclock_allowed_crates = parse_array(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: expected a string array"))?;
                }
                ("bl005", "recovery_paths") => {
                    cfg.recovery_paths = parse_array(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: expected a string array"))?;
                }
                (sec, key) => {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown key `{key}` in [{sec}]"
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// Drop a trailing `# comment`, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `"value"` → `value`.
fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|s| s.to_string())
}

/// `["a", "b"]` → `vec!["a", "b"]`. Single-line arrays only.
fn parse_array(v: &str) -> Option<Vec<String>> {
    let inner = v.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_crates() {
        let cfg = Config::default();
        assert!(cfg.deterministic_crates.contains(&"simnet".to_string()));
        assert_eq!(cfg.severity_of("BL001"), Severity::Deny);
    }

    #[test]
    fn parses_sections_and_overrides() {
        let cfg = Config::parse(
            r#"
            # comment
            [severity]
            BL002 = "warn"   # trailing comment
            [bl001]
            deterministic_crates = ["a", "b"]
            [bl005]
            recovery_paths = ["x/src/y.rs"]
            "#,
        )
        .unwrap();
        assert_eq!(cfg.severity_of("BL002"), Severity::Warn);
        assert_eq!(cfg.severity_of("BL001"), Severity::Deny);
        assert_eq!(cfg.deterministic_crates, vec!["a", "b"]);
        assert_eq!(cfg.recovery_paths, vec!["x/src/y.rs"]);
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        assert!(Config::parse("[bl001]\ndeterministc_crates = [\"a\"]").is_err());
        assert!(Config::parse("[typo]\n").is_err());
        assert!(Config::parse("[severity]\nBL001 = \"maybe\"").is_err());
    }
}
