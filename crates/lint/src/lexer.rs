//! A hand-rolled Rust lexer, just deep enough for token-stream lint rules.
//!
//! The lexer splits a source file into identifier / punctuation / literal
//! tokens with exact `line:col` spans, and keeps comments in a side table
//! (rules need them for `// SAFETY:` checks and suppression directives).
//! String, char, and byte literals are tokenized as opaque atoms so rule
//! patterns never fire on words *inside* a literal — with one deliberate
//! exception: string contents are retained, because the telemetry-name rule
//! (BL006) inspects instrument names.
//!
//! It is not a full Rust lexer — no float-vs-range disambiguation subtleties
//! beyond what the rules need — but it handles the constructs that appear in
//! this workspace: nested block comments, raw strings (`r#"…"#`), byte and
//! C strings, char literals vs. lifetimes, and doc comments.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `for`, ...).
    Ident,
    /// String literal of any flavor; `text` holds the *contents*.
    Str,
    /// Char or byte literal; `text` holds the raw inside.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`); `text` holds the name without the quote.
    Lifetime,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token with its span.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

/// A comment (line or block), with the span of its opening delimiter.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A lexed file: tokens in order, comments in a side table.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes
/// become single-character punctuation tokens, and an unterminated literal
/// simply runs to end of file (the rules stay span-accurate either way).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap() as char);
                }
                out.comments.push(Comment { text, line, col });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let mut text = String::new();
                let mut depth = 0u32;
                while let Some(c) = cur.peek(0) {
                    if c == b'/' && cur.peek(1) == Some(b'*') {
                        depth += 1;
                        text.push(cur.bump().unwrap() as char);
                        text.push(cur.bump().unwrap() as char);
                    } else if c == b'*' && cur.peek(1) == Some(b'/') {
                        depth -= 1;
                        text.push(cur.bump().unwrap() as char);
                        text.push(cur.bump().unwrap() as char);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(cur.bump().unwrap() as char);
                    }
                }
                out.comments.push(Comment { text, line, col });
            }
            b'"' => {
                let text = lex_plain_string(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => {
                lex_quote(&mut cur, &mut out, line, col);
            }
            _ if b.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    // A `.` continues the number only before another digit:
                    // `1..n` is a range, not a float.
                    let float_dot =
                        c == b'.' && cur.peek(1).map(|n| n.is_ascii_digit()).unwrap_or(false);
                    if c.is_ascii_alphanumeric() || c == b'_' || float_dot {
                        text.push(cur.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        text.push(cur.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                // String-literal prefixes: r"", r#""#, b"", br"", c"", ...
                let is_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
                if is_prefix && matches!(cur.peek(0), Some(b'"') | Some(b'#')) {
                    if let Some(content) = lex_maybe_raw_string(&mut cur) {
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: content,
                            line,
                            col,
                        });
                        continue;
                    }
                }
                if text == "b" && cur.peek(0) == Some(b'\'') {
                    // Byte literal b'x'.
                    cur.bump();
                    let content = lex_char_body(&mut cur);
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: content,
                        line,
                        col,
                    });
                    continue;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// A `"…"` string, cursor on the opening quote. Returns the contents.
fn lex_plain_string(cur: &mut Cursor<'_>) -> String {
    cur.bump(); // opening "
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                if cur.peek(0).is_some() {
                    text.push(cur.bump().unwrap() as char);
                }
            }
            b'"' => {
                cur.bump();
                break;
            }
            _ => text.push(cur.bump().unwrap() as char),
        }
    }
    text
}

/// After a string prefix (`r`, `b`, `br`, ...): either `#*"` (raw) or `"`.
/// Returns `None` if what follows is not actually a string (e.g. `r#foo`
/// raw identifiers), leaving the cursor where further `#` tokens lex as
/// punctuation — close enough for lint purposes.
fn lex_maybe_raw_string(cur: &mut Cursor<'_>) -> Option<String> {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some(b'"') {
        return None;
    }
    for _ in 0..=hashes {
        cur.bump(); // the #s and the opening quote
    }
    let mut text = String::new();
    if hashes == 0 {
        // A `b"…"`-style string still processes escapes.
        loop {
            match cur.peek(0) {
                Some(b'\\') => {
                    cur.bump();
                    if cur.peek(0).is_some() {
                        text.push(cur.bump().unwrap() as char);
                    }
                }
                Some(b'"') => {
                    cur.bump();
                    break;
                }
                Some(_) => text.push(cur.bump().unwrap() as char),
                None => break,
            }
        }
        return Some(text);
    }
    // Raw: scan for `"` followed by `hashes` hash marks.
    loop {
        match cur.peek(0) {
            Some(b'"') => {
                let mut n = 0usize;
                while n < hashes && cur.peek(1 + n) == Some(b'#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    break;
                }
                text.push(cur.bump().unwrap() as char);
            }
            Some(_) => text.push(cur.bump().unwrap() as char),
            None => break,
        }
    }
    Some(text)
}

/// Cursor on a `'`: lifetime or char literal.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    // Lifetime: 'ident not closed by another quote ('a, 'static — but 'a'
    // is a char). Look past the identifier run for a closing quote.
    if cur.peek(1).map(is_ident_start).unwrap_or(false) {
        let mut n = 1;
        while cur.peek(n).map(is_ident_continue).unwrap_or(false) {
            n += 1;
        }
        if cur.peek(n) != Some(b'\'') {
            cur.bump(); // the quote
            let mut text = String::new();
            while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                text.push(cur.bump().unwrap() as char);
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            });
            return;
        }
    }
    cur.bump(); // opening quote
    let text = lex_char_body(cur);
    out.toks.push(Tok {
        kind: TokKind::Char,
        text,
        line,
        col,
    });
}

/// Body of a char/byte literal, cursor just past the opening quote.
fn lex_char_body(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    loop {
        match cur.peek(0) {
            Some(b'\\') => {
                cur.bump();
                if cur.peek(0).is_some() {
                    text.push(cur.bump().unwrap() as char);
                }
            }
            Some(b'\'') => {
                cur.bump();
                break;
            }
            Some(_) => text.push(cur.bump().unwrap() as char),
            None => break,
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn words_inside_strings_and_comments_do_not_tokenize() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in /* a nested */ block */
            let a = "HashMap inside a string";
            let b = r#"HashSet raw "quoted" inside"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|i| *i == "HashMap").count(), 1);
        assert!(!ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn string_contents_are_retained_for_bl006() {
        let l = lex(r#"Counter::new("tor.cells_in")"#);
        let strs: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "tor.cells_in");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> Ctx<'_> { 'x' }");
        let lifes: Vec<&Tok> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifes.len(), 3); // 'a, 'a, '_
        let chars: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let l = lex("a\n  bc");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn comments_record_their_spans() {
        let l = lex("x /* b */ y // end");
        assert_eq!(l.comments.len(), 2);
        assert_eq!((l.comments[0].line, l.comments[0].col), (1, 3));
        assert!(l.comments[1].text.contains("end"));
    }

    #[test]
    fn ranges_do_not_glue_into_floats() {
        let l = lex("0..pool.len()");
        assert_eq!(l.toks[0].text, "0");
        assert_eq!(l.toks[0].kind, TokKind::Num);
        // Then two '.' puncts.
        assert_eq!(l.toks[1].text, ".");
        assert_eq!(l.toks[2].text, ".");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let l = lex(r#"let x = b"enc"; let y = b'\n';"#);
        let strs: Vec<&Tok> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "enc");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
    }
}
