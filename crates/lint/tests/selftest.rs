//! Self-test: the shipped workspace must lint clean under the shipped
//! `lint.toml`. This is the same run CI performs via the `bento_lint`
//! binary, held down as a plain test so `cargo test` alone catches a
//! regression (a new HashMap in simnet, a reasonless suppression, a
//! duplicated telemetry name) without the CI wiring.

use lint::config::Config;
use lint::scan_workspace;
use std::path::Path;

#[test]
fn shipped_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let cfg_path = root.join("lint.toml");
    let cfg = match std::fs::read_to_string(&cfg_path) {
        Ok(text) => Config::parse(&text).expect("lint.toml parses"),
        Err(_) => Config::default(),
    };
    let report = scan_workspace(&root, cfg).expect("workspace scan");
    assert!(
        !report.failed(),
        "workspace must lint clean; findings:\n{}",
        report
            .diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
