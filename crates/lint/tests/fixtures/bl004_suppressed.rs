// Fixture: BL004 suppressed (unusual, but the directive must work).
pub fn read_first(v: &[u8]) -> u8 {
    // bento-lint: allow(BL004) -- justification lives in the module docs
    unsafe { *v.get_unchecked(0) }
}
