// Fixture: BL005 positive — panicking unwraps in a fault-recovery path
// (the analyzer feeds this file in under a recovery_paths rel_path).
pub fn rebuild(slot: Option<usize>, name: Option<&str>) -> usize {
    let _ = name.expect("name");
    slot.unwrap()
}
