// Fixture: BL002 clean — time comes from the simulator.
pub fn stamp(now: u64) -> u64 {
    now + 5
}
