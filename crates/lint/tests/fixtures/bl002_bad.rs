// Fixture: BL002 positive — wall clock in sim-visible code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
