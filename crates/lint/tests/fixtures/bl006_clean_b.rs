// Fixture: BL006 clean — a distinct, well-formed instrument name.
pub static DROPS: Counter = Counter::new("sim.cells_dropped");
pub static SPAN: Span = Span::new("sim.relay_forward");
