// Fixture: BL006 — first registration of "sim.cells_relayed" (always fine
// on its own; the duplicate lives in bl006_dup_b.rs).
pub static CELLS: Counter = Counter::new("sim.cells_relayed");
