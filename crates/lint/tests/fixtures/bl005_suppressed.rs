// Fixture: BL005 suppressed with an invariant argument.
pub fn rebuild(slot: Option<usize>) -> usize {
    // bento-lint: allow(BL005) -- slot was inserted two lines up, cannot be None
    slot.unwrap()
}
