// Fixture: BL001 clean — ordered collections only.
use std::collections::{BTreeMap, BTreeSet};

pub struct Table {
    entries: BTreeMap<u32, u64>,
    dead: BTreeSet<u64>,
}
