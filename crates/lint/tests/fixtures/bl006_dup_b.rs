// Fixture: BL006 positive — re-registers a name claimed in bl006_reg_a.rs,
// plus a name that breaks the [a-z0-9_.]+ charset rule.
pub static CELLS_AGAIN: Counter = Counter::new("sim.cells_relayed");
pub static BAD_NAME: Gauge = Gauge::new("Sim-Cells Relayed");
