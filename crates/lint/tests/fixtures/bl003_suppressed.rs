// Fixture: BL003 suppressed.
pub fn roll() -> u8 {
    // bento-lint: allow(BL003) -- test-vector generator, output is discarded
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}
