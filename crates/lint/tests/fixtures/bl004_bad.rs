// Fixture: BL004 positive — `unsafe` with no SAFETY comment anywhere near.
pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
