// Fixture: BL006 duplicate under suppression.
// bento-lint: allow(BL006) -- same metric, re-exported behind a feature gate
pub static CELLS_AGAIN: Counter = Counter::new("sim.cells_relayed");
