// Fixture: BL001 suppressed with a reason on every use site.
// bento-lint: allow(BL001) -- membership-only set, never iterated
use std::collections::HashSet;

pub struct Tombstones {
    // bento-lint: allow(BL001) -- membership-only set, never iterated
    dead: HashSet<u64>,
}
