// Fixture: BL005 clean — recovery code degrades instead of panicking.
pub fn rebuild(slot: Option<usize>) -> usize {
    match slot {
        Some(s) => s,
        None => 0,
    }
}
