// Fixture: BL003 positive — ambient (OS-seeded) randomness.
pub fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}
