// Fixture: BL001 positive — a hash collection in a deterministic crate.
use std::collections::HashMap;

pub struct Table {
    entries: HashMap<u32, u64>,
}
