// Fixture: BL002 suppressed.
pub fn stamp() -> u64 {
    // bento-lint: allow(BL002) -- host-side progress meter, never reaches the sim
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}
