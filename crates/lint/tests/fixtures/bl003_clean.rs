// Fixture: BL003 clean — explicitly seeded randomness.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn roll(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
