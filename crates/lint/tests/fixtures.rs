//! Fixture-driven engine tests: for every rule, a seeded violation must be
//! reported, the suppressed variant must pass (directive + reason), and the
//! clean variant must pass outright. Fixtures live in `tests/fixtures/` as
//! plain source text — they are lexed, never compiled.

use lint::config::Config;
use lint::{Analyzer, Report};
use std::path::Path;

/// Run the analyzer over named fixtures: `(rel_path, crate_name, fixture)`.
fn analyze(files: &[(&str, &str, &str)]) -> Report {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut a = Analyzer::new(Config::default());
    for (rel, krate, fixture) in files {
        let src = std::fs::read_to_string(dir.join(fixture))
            .unwrap_or_else(|e| panic!("fixture {fixture}: {e}"));
        a.add_file(rel, krate, &src);
    }
    a.finish()
}

/// Codes of all deny-severity findings, in report order.
fn deny_codes(r: &Report) -> Vec<&str> {
    r.diags.iter().map(|d| d.code.as_str()).collect()
}

/// The common per-rule triad: the bad fixture fails with exactly `code`,
/// the suppressed and clean fixtures produce no findings at all.
fn assert_triad(code: &str, rel: &str, krate: &str) {
    let stem = code.to_lowercase();
    let bad = analyze(&[(rel, krate, &format!("{stem}_bad.rs"))]);
    assert!(bad.failed(), "{code}: bad fixture must fail");
    assert!(
        deny_codes(&bad).iter().all(|c| *c == code),
        "{code}: bad fixture reports only {code}, got {:?}",
        bad.diags
    );
    let sup = analyze(&[(rel, krate, &format!("{stem}_suppressed.rs"))]);
    assert!(
        !sup.failed(),
        "{code}: suppression with a reason must pass, got {:?}",
        sup.diags
    );
    let clean = analyze(&[(rel, krate, &format!("{stem}_clean.rs"))]);
    assert!(
        !clean.failed(),
        "{code}: clean fixture must pass, got {:?}",
        clean.diags
    );
}

#[test]
fn bl001_hash_collections_triad() {
    assert_triad("BL001", "crates/simnet/src/fixture.rs", "simnet");
}

#[test]
fn bl002_wall_clock_triad() {
    assert_triad("BL002", "crates/core/src/fixture.rs", "core");
}

#[test]
fn bl003_ambient_randomness_triad() {
    assert_triad("BL003", "crates/functions/src/fixture.rs", "functions");
}

#[test]
fn bl004_safety_comment_triad() {
    assert_triad("BL004", "crates/wfp/src/fixture.rs", "wfp");
}

#[test]
fn bl005_recovery_unwrap_triad() {
    // The rel_path must be one of the configured recovery paths.
    assert_triad("BL005", "crates/tor-net/src/retry.rs", "tor-net");
}

#[test]
fn bl006_duplicate_names_across_files() {
    let a = ("crates/simnet/src/fix_a.rs", "simnet", "bl006_reg_a.rs");
    // Duplicate + bad charset: both reported, at the *second* site.
    let dup = analyze(&[
        a,
        ("crates/tor-net/src/fix_b.rs", "tor-net", "bl006_dup_b.rs"),
    ]);
    assert!(dup.failed());
    assert_eq!(deny_codes(&dup), ["BL006", "BL006"], "{:?}", dup.diags);
    assert!(
        dup.diags.iter().all(|d| d.file.ends_with("fix_b.rs")),
        "duplicates blamed on the re-registering site: {:?}",
        dup.diags
    );
    // Suppressing the second site clears the duplicate.
    let sup = analyze(&[
        a,
        (
            "crates/tor-net/src/fix_b.rs",
            "tor-net",
            "bl006_suppressed_b.rs",
        ),
    ]);
    assert!(!sup.failed(), "{:?}", sup.diags);
    // Distinct names: nothing to report.
    let clean = analyze(&[
        a,
        ("crates/tor-net/src/fix_b.rs", "tor-net", "bl006_clean_b.rs"),
    ]);
    assert!(!clean.failed(), "{:?}", clean.diags);
}

#[test]
fn first_registration_alone_is_fine() {
    let one = analyze(&[("crates/simnet/src/fix_a.rs", "simnet", "bl006_reg_a.rs")]);
    assert!(!one.failed(), "{:?}", one.diags);
}
