//! The full Table 1 pipeline at reduced scale: collect traces on the
//! simulated network under each defense and check the accuracy staircase's
//! *shape* — unmodified Tor highly fingerprintable, Browser+0MB weaker,
//! Browser+1MB near chance. (The full-scale run is `cargo run -p bench
//! --bin table1 --release`.)

use wfp::{closed_world_accuracy, collect_traces, CollectConfig, Defense};

// Scaled down in debug builds to keep `cargo test` fast; release (and the
// bench binary) run larger worlds.
const N_SITES: u32 = if cfg!(debug_assertions) { 5 } else { 8 };
const N_VISITS: u32 = if cfg!(debug_assertions) { 3 } else { 4 };

fn cfg(defense: Defense) -> CollectConfig {
    CollectConfig {
        n_sites: N_SITES,
        n_visits: N_VISITS,
        seed: 5,
        corpus_seed: 77,
        defense,
        visit_timeout_s: 240,
        jitter_pct: 3,
    }
}

#[test]
fn accuracy_staircase_shape() {
    let standard = collect_traces(&cfg(Defense::StandardTor));
    assert!(
        standard.len() as u32 >= N_SITES * N_VISITS * 9 / 10,
        "most standard visits completed: {}",
        standard.len()
    );
    let acc_standard = closed_world_accuracy(&standard);

    let browser0 = collect_traces(&cfg(Defense::BentoBrowser { padding: 0 }));
    assert!(
        browser0.len() as u32 >= N_SITES * N_VISITS * 9 / 10,
        "most browser visits completed: {}",
        browser0.len()
    );
    let acc_browser0 = closed_world_accuracy(&browser0);

    let browser7 = collect_traces(&cfg(Defense::BentoBrowser { padding: 7 << 20 }));
    let acc_browser7 = closed_world_accuracy(&browser7);

    eprintln!(
        "accuracy: standard={acc_standard:.3} browser0={acc_browser0:.3} browser7={acc_browser7:.3}"
    );
    // Shape of Table 1: the attack works against vanilla Tor...
    assert!(
        acc_standard >= 0.8,
        "unmodified Tor should be highly fingerprintable, got {acc_standard}"
    );
    // ...and collapses to near chance under heavy padding.
    let chance = 1.0 / N_SITES as f64;
    assert!(
        acc_browser7 <= 2.5 * chance,
        "7MB padding should reduce the attack to ~chance ({chance}), got {acc_browser7}"
    );
    // The staircase is monotone (non-strict: at toy scale Browser+0MB can
    // still perfectly separate a handful of sites by size, as can vanilla
    // Tor), and heavy padding strictly defeats the attacker.
    assert!(
        acc_standard >= acc_browser0 && acc_browser0 >= acc_browser7,
        "staircase: {acc_standard} >= {acc_browser0} >= {acc_browser7}"
    );
    assert!(
        acc_standard - acc_browser7 > 0.5,
        "padding must collapse the attack: {acc_standard} -> {acc_browser7}"
    );
}
