//! Closed-world evaluation: train the attacker on part of each site's
//! visits, measure accuracy on the rest.

use crate::bayes::GaussianNb;
use crate::features::extract;
use crate::knn::Knn;
use crate::mlp::{Mlp, MlpConfig};
use crate::trace::Trace;
use std::collections::BTreeMap;

/// Which attacker to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classifier {
    /// k-NN with the given k.
    Knn(usize),
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// The feed-forward network.
    Mlp,
}

/// An evaluation result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// Fraction of test traces classified correctly.
    pub accuracy: f64,
    /// Training set size.
    pub n_train: usize,
    /// Test set size.
    pub n_test: usize,
    /// Number of classes present.
    pub n_classes: usize,
}

/// Split per label: the first `ceil(frac * n)` visits of each site train.
fn split(traces: &[Trace], train_frac: f64) -> (Vec<&Trace>, Vec<&Trace>) {
    let mut by_label: BTreeMap<usize, Vec<&Trace>> = BTreeMap::new();
    for t in traces {
        by_label.entry(t.label).or_default().push(t);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (_l, group) in by_label.iter() {
        let n_train = ((group.len() as f64 * train_frac).ceil() as usize)
            .min(group.len().saturating_sub(1))
            .max(1);
        for (i, t) in group.iter().enumerate() {
            if i < n_train {
                train.push(*t);
            } else {
                test.push(*t);
            }
        }
    }
    (train, test)
}

/// Evaluate one attacker.
pub fn evaluate(traces: &[Trace], classifier: Classifier, train_frac: f64) -> EvalReport {
    let (train, test) = split(traces, train_frac);
    let x_train: Vec<Vec<f64>> = train.iter().map(|t| extract(t)).collect();
    let y_train: Vec<usize> = train.iter().map(|t| t.label).collect();
    let x_test: Vec<Vec<f64>> = test.iter().map(|t| extract(t)).collect();
    let y_test: Vec<usize> = test.iter().map(|t| t.label).collect();
    let mut n_classes: Vec<usize> = y_train.clone();
    n_classes.sort_unstable();
    n_classes.dedup();

    let predictions: Vec<usize> = match classifier {
        Classifier::Knn(k) => {
            let m = Knn::fit(k, &x_train, &y_train);
            x_test.iter().map(|r| m.predict(r)).collect()
        }
        Classifier::NaiveBayes => {
            let m = GaussianNb::fit(&x_train, &y_train);
            x_test.iter().map(|r| m.predict(r)).collect()
        }
        Classifier::Mlp => {
            let m = Mlp::fit(MlpConfig::default(), &x_train, &y_train);
            x_test.iter().map(|r| m.predict(r)).collect()
        }
    };
    let correct = predictions
        .iter()
        .zip(&y_test)
        .filter(|(p, y)| p == y)
        .count();
    EvalReport {
        accuracy: if y_test.is_empty() {
            0.0
        } else {
            correct as f64 / y_test.len() as f64
        },
        n_train: x_train.len(),
        n_test: x_test.len(),
        n_classes: n_classes.len(),
    }
}

/// The paper reports the strongest attacker's accuracy; we take the max of
/// the fast classifiers (k-NN dominates on this corpus).
pub fn closed_world_accuracy(traces: &[Trace]) -> f64 {
    let knn = evaluate(traces, Classifier::Knn(3), 0.7);
    let nb = evaluate(traces, Classifier::NaiveBayes, 0.7);
    knn.accuracy.max(nb.accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Packet;

    /// A synthetic trace whose structure depends deterministically on its
    /// label (plus small per-visit noise).
    fn synthetic(label: usize, visit: usize) -> Trace {
        let n = 20 + label * 7;
        let packets = (0..n)
            .map(|i| Packet {
                t: i as f64 * 0.01,
                signed_size: if i % (label + 2) == 0 {
                    514.0
                } else {
                    -(498.0 + ((label * 31 + visit) % 3) as f64)
                },
            })
            .collect();
        Trace { label, packets }
    }

    fn corpus(n_labels: usize, visits: usize) -> Vec<Trace> {
        let mut out = Vec::new();
        for v in 0..visits {
            for l in 0..n_labels {
                out.push(synthetic(l, v));
            }
        }
        out
    }

    #[test]
    fn distinguishable_corpus_scores_high() {
        let traces = corpus(8, 6);
        for c in [Classifier::Knn(3), Classifier::NaiveBayes] {
            let r = evaluate(&traces, c, 0.7);
            assert!(
                r.accuracy > 0.9,
                "{c:?} should ace a separable corpus, got {}",
                r.accuracy
            );
            assert_eq!(r.n_classes, 8);
            assert!(r.n_train > 0 && r.n_test > 0);
        }
    }

    #[test]
    fn indistinguishable_corpus_scores_at_chance() {
        // Every label produces the identical trace: accuracy ~ 1/n.
        let mut traces = Vec::new();
        for v in 0..6 {
            for l in 0..10 {
                let mut t = synthetic(0, v);
                t.label = l;
                traces.push(t);
            }
        }
        let acc = closed_world_accuracy(&traces);
        assert!(acc <= 0.25, "indistinguishable world, got {acc}");
    }

    #[test]
    fn split_keeps_every_class_in_train() {
        let traces = corpus(5, 3);
        let (train, test) = split(&traces, 0.7);
        let train_labels: std::collections::HashSet<usize> =
            train.iter().map(|t| t.label).collect();
        assert_eq!(train_labels.len(), 5);
        assert!(!test.is_empty());
    }

    #[test]
    fn mlp_classifier_runs() {
        let traces = corpus(4, 6);
        let r = evaluate(&traces, Classifier::Mlp, 0.7);
        assert!(r.accuracy > 0.5, "mlp got {}", r.accuracy);
    }
}
