//! The undefended baseline: a client that browses over Tor the normal way
//! — fetch the HTML, parse it, fetch every asset — producing exactly the
//! client-side traffic dynamics fingerprinting attacks feed on.

use bento_functions::web::HtmlDoc;
use simnet::{ConnId, Ctx, Node, NodeId};
use tor_net::client::{TerminalReq, TorClient, TorEvent};
use tor_net::ports::HTTP_PORT;
use tor_net::stream_frame::{encode_frame, FrameAssembler};
use tor_net::StreamTarget;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    AwaitCircuit,
    AwaitStream,
    FetchingHtml,
    FetchingAssets,
}

/// A browsing client node.
pub struct BrowseNode {
    /// The onion proxy.
    pub tor: TorClient,
    phase: Phase,
    server: NodeId,
    path: String,
    circ: Option<tor_net::CircuitHandle>,
    stream: Option<u16>,
    assembler: FrameAssembler,
    assets_expected: usize,
    frames_received: usize,
    /// Completed page loads.
    pub visits_done: u32,
    /// Visits that failed (circuit/stream problems).
    pub visits_failed: u32,
}

impl BrowseNode {
    /// A client that trusts `authority`.
    pub fn new(authority: NodeId, key: onion_crypto::hashsig::MerkleVerifyKey) -> BrowseNode {
        BrowseNode {
            tor: TorClient::new(authority, key),
            phase: Phase::Idle,
            server: NodeId(0),
            path: String::new(),
            circ: None,
            stream: None,
            assembler: FrameAssembler::new(),
            assets_expected: 0,
            frames_received: 0,
            visits_done: 0,
            visits_failed: 0,
        }
    }

    /// Begin one page load on a fresh circuit (like a new Tor identity).
    pub fn start_visit(&mut self, ctx: &mut Ctx<'_>, server: NodeId, path: &str) {
        self.server = server;
        self.path = path.to_string();
        self.assembler = FrameAssembler::new();
        self.assets_expected = 0;
        self.frames_received = 0;
        self.stream = None;
        let built = self
            .tor
            .select_path(ctx, TerminalReq::ExitTo(server, HTTP_PORT))
            .and_then(|p| self.tor.build_circuit(ctx, p));
        match built {
            Some(c) => {
                self.circ = Some(c);
                self.phase = Phase::AwaitCircuit;
            }
            None => {
                self.visits_failed += 1;
                self.phase = Phase::Idle;
            }
        }
    }

    /// Whether the current visit completed.
    pub fn idle(&self) -> bool {
        self.phase == Phase::Idle
    }

    fn fail(&mut self) {
        self.visits_failed += 1;
        self.phase = Phase::Idle;
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(c) = self.circ.take() {
            self.tor.destroy_circuit(ctx, c);
        }
        self.visits_done += 1;
        self.phase = Phase::Idle;
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        for ev in self.tor.poll_events() {
            match ev {
                TorEvent::CircuitReady(h) if Some(h) == self.circ => {
                    self.stream =
                        self.tor
                            .open_stream(ctx, h, StreamTarget::Node(self.server, HTTP_PORT));
                    self.phase = Phase::AwaitStream;
                }
                TorEvent::StreamConnected(h, s)
                    if Some(h) == self.circ && Some(s) == self.stream =>
                {
                    self.tor
                        .send_stream(ctx, h, s, &encode_frame(self.path.as_bytes()));
                    self.phase = Phase::FetchingHtml;
                }
                TorEvent::StreamData(h, s, data)
                    if Some(h) == self.circ && Some(s) == self.stream =>
                {
                    self.assembler.push(&data);
                    let frames = self.assembler.drain_frames();
                    for frame in frames {
                        match self.phase {
                            Phase::FetchingHtml => {
                                let Some(doc) = HtmlDoc::decode(&frame) else {
                                    self.fail();
                                    return;
                                };
                                self.assets_expected = doc.assets.len();
                                // Fetch every asset (pipelined, like a
                                // browser with open connections).
                                for (path, _) in &doc.assets {
                                    self.tor
                                        .send_stream(ctx, h, s, &encode_frame(path.as_bytes()));
                                }
                                if self.assets_expected == 0 {
                                    self.finish(ctx);
                                    return;
                                }
                                self.phase = Phase::FetchingAssets;
                            }
                            Phase::FetchingAssets => {
                                self.frames_received += 1;
                                if self.frames_received >= self.assets_expected {
                                    self.finish(ctx);
                                    return;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                TorEvent::CircuitClosed(h) if Some(h) == self.circ && self.phase != Phase::Idle => {
                    self.fail();
                }
                TorEvent::StreamEnded(h, s)
                    if Some(h) == self.circ
                        && Some(s) == self.stream
                        && self.phase != Phase::Idle =>
                {
                    self.fail();
                }
                _ => {}
            }
        }
    }
}

impl Node for BrowseNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.tor.bootstrap(ctx);
    }
    fn on_conn_established(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _peer: NodeId) {
        self.tor.handle_conn_established(ctx, conn);
        self.pump(ctx);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, msg: Vec<u8>) {
        self.tor.handle_msg(ctx, conn, msg);
        self.pump(ctx);
    }
    fn on_conn_closed(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        self.tor.handle_conn_closed(ctx, conn);
        self.pump(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.tor.handle_timer(ctx, tag);
        self.pump(ctx);
    }
}
