//! k-nearest-neighbors over normalized trace features, with inverse
//! distance voting — the strongest of the three attackers on this corpus.

use crate::features::Normalizer;

/// A fitted k-NN classifier.
pub struct Knn {
    k: usize,
    norm: Normalizer,
    points: Vec<(Vec<f64>, usize)>,
}

impl Knn {
    /// Fit with neighborhood size `k`.
    pub fn fit(k: usize, rows: &[Vec<f64>], labels: &[usize]) -> Knn {
        assert_eq!(rows.len(), labels.len());
        let norm = Normalizer::fit(rows);
        let points = rows
            .iter()
            .zip(labels)
            .map(|(r, &l)| (norm.apply(r), l))
            .collect();
        Knn { k, norm, points }
    }

    /// Predict the label of one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let q = self.norm.apply(row);
        let mut dists: Vec<(f64, usize)> = self
            .points
            .iter()
            .map(|(p, l)| {
                let d: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, *l)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (d, l) in dists.iter().take(self.k) {
            *votes.entry(*l).or_insert(0.0) += 1.0 / (d.sqrt() + 1e-9);
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_clusters_classified() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(0);
            rows.push(vec![10.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let knn = Knn::fit(3, &rows, &labels);
        assert_eq!(knn.predict(&[0.05, 0.0]), 0);
        assert_eq!(knn.predict(&[10.05, 0.0]), 1);
    }

    #[test]
    fn nearest_neighbor_wins_votes() {
        let rows = vec![vec![0.0], vec![1.0], vec![1.1], vec![1.2]];
        let labels = vec![0, 1, 1, 1];
        let knn = Knn::fit(4, &rows, &labels);
        // Query right on top of label 0: inverse-distance voting should let
        // the single exact neighbor dominate.
        assert_eq!(knn.predict(&[0.0]), 0);
    }

    #[test]
    fn single_class_always_predicted() {
        let rows = vec![vec![1.0], vec![2.0]];
        let labels = vec![7, 7];
        let knn = Knn::fit(1, &rows, &labels);
        assert_eq!(knn.predict(&[100.0]), 7);
    }
}
