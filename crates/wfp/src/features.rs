//! Trace feature extraction: the classical website-fingerprinting feature
//! families (volume, packet counts, burst structure, direction signature,
//! timing), producing a fixed-length vector.

use crate::trace::Trace;

/// Dimensionality of the feature vector.
pub const FEATURE_DIM: usize = 46;

/// Extract [`FEATURE_DIM`] features from a trace.
pub fn extract(trace: &Trace) -> Vec<f64> {
    let mut f = Vec::with_capacity(FEATURE_DIM);
    let bytes_in = trace.bytes_in();
    let bytes_out = trace.bytes_out();
    let n_in = trace.packets.iter().filter(|p| p.signed_size < 0.0).count() as f64;
    let n_out = trace.len() as f64 - n_in;
    // Volume family (log-scaled to tame the dynamic range).
    f.push((1.0 + bytes_in).ln());
    f.push((1.0 + bytes_out).ln());
    f.push((1.0 + bytes_in + bytes_out).ln());
    f.push(bytes_in / (bytes_in + bytes_out).max(1.0));
    // Count family.
    f.push((1.0 + n_in).ln());
    f.push((1.0 + n_out).ln());
    f.push(n_in / (n_in + n_out).max(1.0));
    // NOTE: no wall-clock timing features. The paper's Deep Fingerprinting
    // attack classifies on *direction sequences*, not timing; and in a
    // noise-free simulator, absolute timing would hand the attacker a
    // side channel (the exit-side fetch pause) that real-network jitter
    // denies it. Outgoing-burst structure stands in for the two slots.
    let out_bursts: Vec<f64> = trace
        .bursts()
        .iter()
        .filter(|(s, _)| *s > 0)
        .map(|(_, b)| *b)
        .collect();
    f.push(out_bursts.len() as f64);
    f.push(out_bursts.iter().copied().fold(0.0, f64::max).ln_1p());
    // Burst family.
    let bursts = trace.bursts();
    let in_bursts: Vec<f64> = bursts
        .iter()
        .filter(|(s, _)| *s < 0)
        .map(|(_, b)| *b)
        .collect();
    f.push(bursts.len() as f64);
    f.push(in_bursts.len() as f64);
    f.push(in_bursts.iter().copied().fold(0.0, f64::max).ln_1p());
    let mean_burst = if in_bursts.is_empty() {
        0.0
    } else {
        in_bursts.iter().sum::<f64>() / in_bursts.len() as f64
    };
    f.push(mean_burst.ln_1p());
    // The sizes of the first 8 incoming bursts (page structure: HTML then
    // assets arrive as distinguishable bursts).
    for i in 0..8 {
        f.push(in_bursts.get(i).copied().unwrap_or(0.0).ln_1p());
    }
    // Direction signature: sign of the first 16 packets.
    for i in 0..16 {
        f.push(
            trace
                .packets
                .get(i)
                .map(|p| p.signed_size.signum())
                .unwrap_or(0.0),
        );
    }
    // Cumulative-size snapshots at 8 evenly spaced points (the "CUMUL"
    // feature family).
    let n = trace.len();
    let mut cum = 0.0;
    let mut cums = Vec::with_capacity(n);
    for p in &trace.packets {
        cum += p.signed_size.abs();
        cums.push(cum);
    }
    for i in 1..=8 {
        let idx = if n == 0 {
            0
        } else {
            (i * n / 8).saturating_sub(1)
        };
        f.push(cums.get(idx).copied().unwrap_or(0.0).ln_1p());
    }
    // Rounded total size (the coarse feature padding is designed to kill).
    f.push(((bytes_in / 65_536.0).round()).ln_1p());
    debug_assert_eq!(f.len(), FEATURE_DIM);
    f
}

/// Column-wise z-score normalization parameters.
#[derive(Debug, Clone)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fit on a training matrix.
    pub fn fit(rows: &[Vec<f64>]) -> Normalizer {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let n = rows.len().max(1) as f64;
        let mut mean = vec![0.0; dim];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut std = vec![0.0; dim];
        for r in rows {
            for ((s, v), m) in std.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt().max(1e-9);
        }
        Normalizer { mean, std }
    }

    /// Apply to one row.
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Packet;

    fn synthetic(label: usize, sizes: &[f64]) -> Trace {
        Trace {
            label,
            packets: sizes
                .iter()
                .enumerate()
                .map(|(i, s)| Packet {
                    t: i as f64 * 0.01,
                    signed_size: *s,
                })
                .collect(),
        }
    }

    #[test]
    fn feature_vector_has_fixed_dim() {
        for t in [
            synthetic(0, &[]),
            synthetic(0, &[514.0]),
            synthetic(0, &[514.0, -514.0, -514.0, 514.0, -498.0]),
        ] {
            assert_eq!(extract(&t).len(), FEATURE_DIM);
        }
    }

    #[test]
    fn different_structures_differ() {
        let a = synthetic(0, &[514.0, -514.0, -514.0, -514.0]);
        let b = synthetic(1, &[514.0, -514.0, 514.0, -514.0, 514.0, -514.0]);
        assert_ne!(extract(&a), extract(&b));
    }

    #[test]
    fn all_features_finite() {
        let t = synthetic(0, &[1e9, -1e9, -0.0, 0.0]);
        assert!(extract(&t).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64, 100.0 + 2.0 * i as f64])
            .collect();
        let norm = Normalizer::fit(&rows);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| norm.apply(r)).collect();
        for col in 0..2 {
            let mean: f64 =
                transformed.iter().map(|r| r[col]).sum::<f64>() / transformed.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
        }
    }

    #[test]
    fn normalizer_handles_constant_columns() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let norm = Normalizer::fit(&rows);
        let t = norm.apply(&[5.0, 1.5]);
        assert!(t.iter().all(|v| v.is_finite()));
    }
}
