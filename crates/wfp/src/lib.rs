//! # wfp — website fingerprinting attack harness
//!
//! Reproduces the adversary of §7: an observer on the client↔guard link
//! recording packet direction, size and timing, trying to identify which of
//! a closed world of sites the client visited. The paper evaluates the
//! Deep Fingerprinting CNN; this crate implements the same experiment with
//! three from-scratch classifiers (k-NN on trace features, Gaussian naive
//! Bayes, and a small feed-forward network trained with SGD) and reports
//! the strongest — any competent classifier over direction/size/burst
//! features reproduces Table 1's accuracy staircase (see DESIGN.md).
//!
//! * [`trace`] — the adversary's view: a timestamped, directional record.
//! * [`features`] — the feature vector (volumes, bursts, direction
//!   signature, timing).
//! * [`knn`], [`bayes`], [`mlp`] — the classifiers.
//! * [`browse`] — a client-side page fetcher over Tor (the *undefended*
//!   baseline: the traffic dynamics fingerprinting feeds on).
//! * [`collect`] — run the full network simulation under a given defense
//!   and harvest labeled traces.
//! * [`eval`] — closed-world train/test evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayes;
pub mod browse;
pub mod collect;
pub mod eval;
pub mod features;
pub mod knn;
pub mod mlp;
pub mod trace;

pub use collect::{collect_traces, CollectConfig, Defense};
pub use eval::{closed_world_accuracy, evaluate, Classifier, EvalReport};
pub use trace::Trace;
