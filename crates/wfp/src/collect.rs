//! Run the network simulation under a chosen defense and harvest the
//! adversary's traces — the §7.3 experiment setup: "we visited 100 popular
//! websites at least 10 times using a standard Tor browser and again using
//! Browser (with 0MB, 1MB, and 7MB padding ...); all Tor traffic between
//! the client and its guard relay is recorded."

use crate::browse::BrowseNode;
use crate::trace::Trace;
use bento::protocol::FunctionSpec;
use bento::testnet::BentoNetwork;
use bento::{BentoClientNode, MiddleboxPolicy};
use bento_functions::browser::{self, BrowseRequest};
use bento_functions::standard_registry;
use bento_functions::web::{corpus, SiteModel};
use simnet::{Iface, NodeId, SimDuration, SimTime};
use tor_net::ports::HTTP_PORT;

/// The defense under evaluation (the rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// Unmodified Tor: the client browses normally.
    StandardTor,
    /// The Browser function with the given padding quantum (bytes).
    BentoBrowser {
        /// Pad the digest to a multiple of this many bytes (0 = none).
        padding: u64,
    },
}

impl Defense {
    /// Display label matching the paper's rows.
    pub fn label(&self) -> String {
        match self {
            Defense::StandardTor => "None (unmodified Tor)".to_string(),
            Defense::BentoBrowser { padding } => {
                format!("Browser, {}MB padding", padding / (1 << 20))
            }
        }
    }
}

/// Collection parameters.
#[derive(Debug, Clone, Copy)]
pub struct CollectConfig {
    /// Closed-world size.
    pub n_sites: u32,
    /// Visits per site.
    pub n_visits: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Corpus generation seed.
    pub corpus_seed: u64,
    /// Defense under test.
    pub defense: Defense,
    /// Per-visit timeout in simulated seconds.
    pub visit_timeout_s: u64,
    /// Per-visit page-content size jitter, percent (real pages change
    /// between visits; 0 = perfectly static pages).
    pub jitter_pct: u32,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            n_sites: 100,
            n_visits: 10,
            seed: 1,
            corpus_seed: 77,
            defense: Defense::StandardTor,
            visit_timeout_s: 240,
            jitter_pct: 3,
        }
    }
}

fn all_pages(sites: &[SiteModel], n_visits: u32, jitter_pct: u32) -> Vec<(String, Vec<Vec<u8>>)> {
    sites
        .iter()
        .flat_map(|s| s.server_pages_variants(n_visits, jitter_pct))
        .collect()
}

static T_TRACES: telemetry::Counter = telemetry::Counter::new("wfp.traces_collected");

/// Collect labeled traces for `cfg.defense`.
pub fn collect_traces(cfg: &CollectConfig) -> Vec<Trace> {
    let traces = match cfg.defense {
        Defense::StandardTor => collect_standard(cfg),
        Defense::BentoBrowser { padding } => collect_browser(cfg, padding),
    };
    T_TRACES.add(traces.len() as u64);
    traces
}

fn collect_standard(cfg: &CollectConfig) -> Vec<Trace> {
    let sites = corpus(cfg.n_sites, cfg.corpus_seed);
    let mut net = tor_net::netbuild::NetworkBuilder::new()
        .seed(cfg.seed)
        .middles(6)
        .exits(3)
        .build();
    let server = net.add_web_server("web", all_pages(&sites, cfg.n_visits, cfg.jitter_pct));
    let client = net.sim.add_node(
        "victim",
        Iface::residential(),
        Box::new(BrowseNode::new(net.authority, net.authority_key)),
    );
    net.sim.enable_sniffer(client);
    net.sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let mut traces = Vec::new();
    for visit in 0..cfg.n_visits {
        for (label, site) in sites.iter().enumerate() {
            // Bound memory across thousands of visits: the trace window is
            // per-visit, so drop prior history.
            net.sim.sniffer_mut(client).clear();
            let mark = net.sim.sniffer(client).len();
            let done_before = net.sim.with_node::<BrowseNode, _>(client, |n, ctx| {
                let d = n.visits_done + n.visits_failed;
                n.start_visit(ctx, server, &site.html_path_variant(visit));
                d
            });
            // Run until the visit completes or times out.
            let deadline = net.sim.now() + SimDuration::from_secs(cfg.visit_timeout_s);
            loop {
                let now = net.sim.now();
                if now >= deadline {
                    break;
                }
                net.sim.run_until(now + SimDuration::from_millis(500));
                let done = net
                    .sim
                    .with_node::<BrowseNode, _>(client, |n, _| n.visits_done + n.visits_failed);
                if done > done_before {
                    break;
                }
            }
            let ok = net
                .sim
                .with_node::<BrowseNode, _>(client, |n, _| n.idle() && n.visits_failed == 0);
            let events = net.sim.sniffer(client).events()[mark..].to_vec();
            if ok && !events.is_empty() {
                traces.push(Trace::from_events(label, &events));
            }
            // A short gap between visits.
            let now = net.sim.now();
            net.sim.run_until(now + SimDuration::from_millis(500));
        }
    }
    traces
}

fn collect_browser(cfg: &CollectConfig, padding: u64) -> Vec<Trace> {
    let sites = corpus(cfg.n_sites, cfg.corpus_seed);
    let mut bn = BentoNetwork::build(
        cfg.seed,
        1,
        MiddleboxPolicy::permissive(),
        standard_registry,
    );
    let server = bn
        .net
        .add_web_server("web", all_pages(&sites, cfg.n_visits, cfg.jitter_pct));
    let client = bn.add_bento_client("victim");
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(2));
    // Install the Browser function once (the paper's "small upload").
    let conn = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                .into_iter()
                .cloned()
                .collect();
            n.bento
                .connect_box(ctx, &mut n.tor, &boxes[0])
                .expect("box session")
        });
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(5));
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            n.bento
                .request_container(ctx, &mut n.tor, conn, bento::protocol::ImageKind::Sgx);
        });
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(8));
    let (container, inv, _shut) = bn
        .net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, _| n.container_ready(conn))
        .expect("container");
    bn.net
        .sim
        .with_node::<BentoClientNode, _>(client, |n, ctx| {
            let spec = FunctionSpec {
                params: vec![],
                manifest: browser::manifest(false),
            };
            n.bento.upload(ctx, &mut n.tor, conn, container, &spec);
        });
    bn.net
        .sim
        .run_until(SimTime::ZERO + SimDuration::from_secs(12));
    bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
        assert!(n.upload_ok(conn), "browser installed: {:?}", n.bento_events);
    });
    bn.net.sim.enable_sniffer(client);

    let ends = |n: &BentoClientNode| {
        n.bento_events
            .iter()
            .filter(|e| matches!(e, bento::BentoEvent::OutputEnd(_)))
            .count()
    };
    let connections = |n: &BentoClientNode| {
        n.bento_events
            .iter()
            .filter(|e| matches!(e, bento::BentoEvent::Connected(_)))
            .count()
    };
    let mut traces = Vec::new();
    for visit in 0..cfg.n_visits {
        for (label, site) in sites.iter().enumerate() {
            // Bound memory across thousands of visits: page payloads logged
            // in the client's event history would otherwise accumulate to
            // gigabytes under heavy padding.
            bn.net.sim.with_node::<BentoClientNode, _>(client, |n, _| {
                n.bento_events.clear();
                n.tor_events.clear();
            });
            bn.net.sim.sniffer_mut(client).clear();
            let mark = bn.net.sim.sniffer(client).len();
            // A fresh session circuit per visit, like a real client whose
            // circuits rotate: this also keeps circuit-window (SENDME)
            // phase from leaking visit order into the trace.
            let (visit_conn, conns_before) =
                bn.net
                    .sim
                    .with_node::<BentoClientNode, _>(client, |n, ctx| {
                        let boxes: Vec<_> = bento::BentoClient::discover_boxes(&n.tor)
                            .into_iter()
                            .cloned()
                            .collect();
                        let c = n
                            .bento
                            .connect_box(ctx, &mut n.tor, &boxes[0])
                            .expect("box session");
                        (c, connections(n))
                    });
            // Wait for the session stream, then invoke.
            let deadline = bn.net.sim.now() + SimDuration::from_secs(cfg.visit_timeout_s);
            loop {
                let now = bn.net.sim.now();
                if now >= deadline {
                    break;
                }
                bn.net.sim.run_until(now + SimDuration::from_millis(200));
                let c = bn
                    .net
                    .sim
                    .with_node::<BentoClientNode, _>(client, |n, _| connections(n));
                if c > conns_before {
                    break;
                }
            }
            let ends_before = bn
                .net
                .sim
                .with_node::<BentoClientNode, _>(client, |n, ctx| {
                    let req = BrowseRequest {
                        server,
                        port: HTTP_PORT,
                        path: site.html_path_variant(visit),
                        padding,
                        dropbox_on: None,
                    };
                    let e = ends(n);
                    n.bento
                        .invoke(ctx, &mut n.tor, visit_conn, inv, req.encode());
                    e
                });
            loop {
                let now = bn.net.sim.now();
                if now >= deadline {
                    break;
                }
                bn.net.sim.run_until(now + SimDuration::from_millis(500));
                let e = bn
                    .net
                    .sim
                    .with_node::<BentoClientNode, _>(client, |n, _| ends(n));
                if e > ends_before {
                    break;
                }
            }
            let events = bn.net.sim.sniffer(client).events()[mark..].to_vec();
            if !events.is_empty() {
                traces.push(Trace::from_events(label, &events));
            }
            // Tear the visit session down (circuits are per-visit).
            bn.net
                .sim
                .with_node::<BentoClientNode, _>(client, |n, ctx| {
                    n.bento.close_box(ctx, &mut n.tor, visit_conn);
                });
            let now = bn.net.sim.now();
            bn.net.sim.run_until(now + SimDuration::from_millis(500));
        }
    }
    traces
}

/// The web server address helper for external drivers.
pub fn corpus_total_bytes(n_sites: u32, corpus_seed: u64) -> Vec<(String, u64)> {
    corpus(n_sites, corpus_seed)
        .iter()
        .map(|s| (s.name.clone(), s.total_bytes()))
        .collect()
}

/// Site helper re-export for drivers.
pub fn site(index: u32, corpus_seed: u64) -> SiteModel {
    SiteModel::generate(index, corpus_seed)
}

/// Type alias re-export.
pub type Server = NodeId;
