//! A small feed-forward network (one ReLU hidden layer, softmax output)
//! trained with minibatch SGD — the "deep learning" attacker standing in
//! for the paper's Deep Fingerprinting CNN, scaled to this corpus.

use crate::features::Normalizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed (initialization and shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 64,
            epochs: 60,
            lr: 0.05,
            seed: 7,
        }
    }
}

/// A fitted network.
pub struct Mlp {
    norm: Normalizer,
    w1: Vec<Vec<f64>>, // hidden x in
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>, // out x hidden
    b2: Vec<f64>,
    n_classes: usize,
}

fn softmax(z: &mut [f64]) {
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in z.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    for v in z.iter_mut() {
        *v /= sum;
    }
}

impl Mlp {
    /// Train on a labeled feature matrix.
    pub fn fit(cfg: MlpConfig, rows: &[Vec<f64>], labels: &[usize]) -> Mlp {
        assert_eq!(rows.len(), labels.len());
        let norm = Normalizer::fit(rows);
        let x: Vec<Vec<f64>> = rows.iter().map(|r| norm.apply(r)).collect();
        let dim = x.first().map(|r| r.len()).unwrap_or(0);
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale1 = (2.0 / dim.max(1) as f64).sqrt();
        let scale2 = (2.0 / cfg.hidden as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..cfg.hidden)
            .map(|_| {
                (0..dim)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale1)
                    .collect()
            })
            .collect();
        let mut b1 = vec![0.0; cfg.hidden];
        let mut w2: Vec<Vec<f64>> = (0..n_classes)
            .map(|_| {
                (0..cfg.hidden)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale2)
                    .collect()
            })
            .collect();
        let mut b2 = vec![0.0; n_classes];

        let mut order: Vec<usize> = (0..x.len()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                // Forward.
                let mut h = vec![0.0; cfg.hidden];
                for (j, hj) in h.iter_mut().enumerate() {
                    let mut s = b1[j];
                    for (wk, xk) in w1[j].iter().zip(&x[i]) {
                        s += wk * xk;
                    }
                    *hj = s.max(0.0);
                }
                let mut z = vec![0.0; n_classes];
                for (c, zc) in z.iter_mut().enumerate() {
                    let mut s = b2[c];
                    for (wk, hk) in w2[c].iter().zip(&h) {
                        s += wk * hk;
                    }
                    *zc = s;
                }
                softmax(&mut z);
                // Backward (cross-entropy).
                let mut dz = z;
                dz[labels[i]] -= 1.0;
                let mut dh = vec![0.0; cfg.hidden];
                for (c, dzc) in dz.iter().enumerate() {
                    for (k, dhk) in dh.iter_mut().enumerate() {
                        *dhk += dzc * w2[c][k];
                    }
                }
                for (c, dzc) in dz.iter().enumerate() {
                    for (k, hk) in h.iter().enumerate() {
                        w2[c][k] -= cfg.lr * dzc * hk;
                    }
                    b2[c] -= cfg.lr * dzc;
                }
                for (j, hj) in h.iter().enumerate() {
                    if *hj > 0.0 {
                        for (k, xk) in x[i].iter().enumerate() {
                            w1[j][k] -= cfg.lr * dh[j] * xk;
                        }
                        b1[j] -= cfg.lr * dh[j];
                    }
                }
            }
        }
        Mlp {
            norm,
            w1,
            b1,
            w2,
            b2,
            n_classes,
        }
    }

    /// Predict the label of one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let x = self.norm.apply(row);
        let mut h = vec![0.0; self.b1.len()];
        for (j, hj) in h.iter_mut().enumerate() {
            let mut s = self.b1[j];
            for (wk, xk) in self.w1[j].iter().zip(&x) {
                s += wk * xk;
            }
            *hj = s.max(0.0);
        }
        let mut best = (f64::NEG_INFINITY, 0usize);
        for c in 0..self.n_classes {
            let mut s = self.b2[c];
            for (wk, hk) in self.w2[c].iter().zip(&h) {
                s += wk * hk;
            }
            if s > best.0 {
                best = (s, c);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor() {
        // XOR is not linearly separable: passing requires the hidden layer
        // to actually work.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        // Replicate for a workable training set.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..50 {
            xs.extend(rows.clone());
            ys.extend(labels.clone());
        }
        let mlp = Mlp::fit(
            MlpConfig {
                hidden: 16,
                epochs: 200,
                lr: 0.05,
                seed: 3,
            },
            &xs,
            &ys,
        );
        for (r, l) in rows.iter().zip(&labels) {
            assert_eq!(mlp.predict(r), *l, "xor({r:?})");
        }
    }

    #[test]
    fn multiclass_clusters() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..4usize {
            for i in 0..30 {
                rows.push(vec![c as f64 * 3.0 + (i % 3) as f64 * 0.1, (c % 2) as f64]);
                labels.push(c);
            }
        }
        let mlp = Mlp::fit(MlpConfig::default(), &rows, &labels);
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, l)| mlp.predict(r) == **l)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let rows = vec![
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        let labels = vec![0, 0, 1, 1];
        let a = Mlp::fit(MlpConfig::default(), &rows, &labels);
        let b = Mlp::fit(MlpConfig::default(), &rows, &labels);
        for r in &rows {
            assert_eq!(a.predict(r), b.predict(r));
        }
    }
}
