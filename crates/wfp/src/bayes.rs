//! Gaussian naive Bayes over trace features.

/// A fitted Gaussian naive Bayes classifier.
pub struct GaussianNb {
    classes: Vec<usize>,
    /// Per class: (log prior, per-feature mean, per-feature variance).
    params: Vec<(f64, Vec<f64>, Vec<f64>)>,
}

impl GaussianNb {
    /// Fit on a labeled feature matrix.
    pub fn fit(rows: &[Vec<f64>], labels: &[usize]) -> GaussianNb {
        assert_eq!(rows.len(), labels.len());
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();
        let mut params = Vec::with_capacity(classes.len());
        for &c in &classes {
            let members: Vec<&Vec<f64>> = rows
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == c)
                .map(|(r, _)| r)
                .collect();
            let n = members.len() as f64;
            let mut mean = vec![0.0; dim];
            for r in &members {
                for (m, v) in mean.iter_mut().zip(r.iter()) {
                    *m += v;
                }
            }
            for m in mean.iter_mut() {
                *m /= n;
            }
            let mut var = vec![0.0; dim];
            for r in &members {
                for ((s, v), m) in var.iter_mut().zip(r.iter()).zip(&mean) {
                    *s += (v - m) * (v - m);
                }
            }
            for s in var.iter_mut() {
                *s = (*s / n).max(1e-6);
            }
            let prior = (n / rows.len() as f64).ln();
            params.push((prior, mean, var));
        }
        GaussianNb { classes, params }
    }

    /// Predict the label of one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut best = (f64::NEG_INFINITY, 0usize);
        for (ci, (prior, mean, var)) in self.params.iter().enumerate() {
            let mut log_p = *prior;
            for ((v, m), s2) in row.iter().zip(mean).zip(var) {
                log_p += -0.5 * ((v - m) * (v - m) / s2 + s2.ln());
            }
            if log_p > best.0 {
                best = (log_p, self.classes[ci]);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gaussian_clusters_classified() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..100 {
            rows.push(vec![rng.gen::<f64>(), 0.0 + rng.gen::<f64>()]);
            labels.push(0);
            rows.push(vec![5.0 + rng.gen::<f64>(), 5.0 + rng.gen::<f64>()]);
            labels.push(1);
        }
        let nb = GaussianNb::fit(&rows, &labels);
        assert_eq!(nb.predict(&[0.5, 0.5]), 0);
        assert_eq!(nb.predict(&[5.5, 5.5]), 1);
    }

    #[test]
    fn priors_break_ties() {
        // Class 1 is 9x more common; an ambiguous point goes to it.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        rows.push(vec![0.0]);
        labels.push(0);
        for _ in 0..9 {
            rows.push(vec![0.1]);
            labels.push(1);
        }
        let nb = GaussianNb::fit(&rows, &labels);
        assert_eq!(nb.predict(&[0.05]), 1);
    }

    #[test]
    fn zero_variance_columns_survive() {
        let rows = vec![vec![1.0, 5.0], vec![1.0, 5.0], vec![2.0, 5.0]];
        let labels = vec![0, 0, 1];
        let nb = GaussianNb::fit(&rows, &labels);
        assert_eq!(nb.predict(&[1.0, 5.0]), 0);
        assert_eq!(nb.predict(&[2.0, 5.0]), 1);
    }
}
