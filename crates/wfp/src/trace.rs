//! The adversary's observation: a directional, timestamped packet trace.

#[cfg(test)]
use simnet::trace::Direction;
use simnet::trace::TraceEvent;
use simnet::SimTime;

/// One observed transmission: (seconds since trace start, signed size).
/// Positive = client→network, negative = network→client — the sign
/// convention of the fingerprinting literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Seconds since the first packet of the trace.
    pub t: f64,
    /// Signed size in bytes.
    pub signed_size: f64,
}

/// A labeled trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Site index (the closed-world label).
    pub label: usize,
    /// Packets in time order.
    pub packets: Vec<Packet>,
}

impl Trace {
    /// Build from sniffer events, rebasing time to the first event.
    pub fn from_events(label: usize, events: &[TraceEvent]) -> Trace {
        let t0 = events.first().map(|e| e.time).unwrap_or(SimTime::ZERO);
        let packets = events
            .iter()
            .map(|e| Packet {
                t: e.time.since(t0).as_secs_f64(),
                signed_size: e.dir.sign() as f64 * e.bytes as f64,
            })
            .collect();
        Trace { label, packets }
    }

    /// Total bytes toward the client.
    pub fn bytes_in(&self) -> f64 {
        self.packets
            .iter()
            .filter(|p| p.signed_size < 0.0)
            .map(|p| -p.signed_size)
            .sum()
    }

    /// Total bytes from the client.
    pub fn bytes_out(&self) -> f64 {
        self.packets
            .iter()
            .filter(|p| p.signed_size > 0.0)
            .map(|p| p.signed_size)
            .sum()
    }

    /// Trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.packets.last().map(|p| p.t).unwrap_or(0.0)
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Maximal runs of same-direction packets: (direction sign, run bytes).
    pub fn bursts(&self) -> Vec<(i8, f64)> {
        let mut out: Vec<(i8, f64)> = Vec::new();
        for p in &self.packets {
            let sign = if p.signed_size >= 0.0 { 1i8 } else { -1 };
            match out.last_mut() {
                Some((s, bytes)) if *s == sign => *bytes += p.signed_size.abs(),
                _ => out.push((sign, p.signed_size.abs())),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{ConnId, NodeId};

    fn ev(ms: u64, dir: Direction, bytes: u32) -> TraceEvent {
        TraceEvent {
            time: SimTime(ms * 1_000_000),
            dir,
            bytes,
            conn: ConnId(0),
            peer: NodeId(0),
        }
    }

    #[test]
    fn conversion_rebases_time_and_signs_sizes() {
        let events = vec![
            ev(1000, Direction::Outgoing, 514),
            ev(1500, Direction::Incoming, 514),
            ev(2000, Direction::Incoming, 514),
        ];
        let t = Trace::from_events(3, &events);
        assert_eq!(t.label, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.packets[0].t, 0.0);
        assert!((t.packets[1].t - 0.5).abs() < 1e-9);
        assert_eq!(t.bytes_out(), 514.0);
        assert_eq!(t.bytes_in(), 1028.0);
        assert!((t.duration() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_group_runs() {
        let events = vec![
            ev(0, Direction::Outgoing, 100),
            ev(1, Direction::Outgoing, 100),
            ev(2, Direction::Incoming, 500),
            ev(3, Direction::Incoming, 500),
            ev(4, Direction::Incoming, 500),
            ev(5, Direction::Outgoing, 100),
        ];
        let t = Trace::from_events(0, &events);
        assert_eq!(t.bursts(), vec![(1, 200.0), (-1, 1500.0), (1, 100.0)]);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::from_events(0, &[]);
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
        assert!(t.bursts().is_empty());
    }
}
