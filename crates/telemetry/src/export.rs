//! Versioned on-disk export: `TELEMETRY_<name>.json` artifacts.
//!
//! The schema is versioned so CI can refuse an export it does not
//! understand. v1 is a flat object: `schema`, `label`, `mode`, a `totals`
//! snapshot, and an optional `trials` array of per-trial snapshots (in
//! trial-index order). Everything except `label` is a pure function of the
//! recorded metrics, so repeated runs — and runs at different `--threads` —
//! produce byte-identical files.

use crate::snapshot::Snapshot;
use crate::Mode;
use std::path::{Path, PathBuf};

/// Schema identifier written into (and required of) every export.
pub const SCHEMA: &str = "bento-telemetry/v1";

/// Render a full export document.
pub fn render(label: &str, mode: Mode, totals: &Snapshot, trials: Option<&[Snapshot]>) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"label\": \"{}\",\n", escape(label)));
    out.push_str(&format!("  \"mode\": \"{}\",\n", mode.name()));
    out.push_str("  \"totals\": {\n");
    totals.write_json(&mut out, 4);
    match trials {
        None => out.push_str("  }\n"),
        Some(trials) => {
            out.push_str("  },\n");
            out.push_str("  \"trials\": [\n");
            for (i, t) in trials.iter().enumerate() {
                out.push_str("    {\n");
                t.write_json(&mut out, 6);
                out.push_str(if i + 1 == trials.len() {
                    "    }\n"
                } else {
                    "    },\n"
                });
            }
            out.push_str("  ]\n");
        }
    }
    out.push_str("}\n");
    out
}

/// Write an export under `dir` as `TELEMETRY_<name>.json`; returns the path.
pub fn write(
    dir: impl AsRef<Path>,
    name: &str,
    label: &str,
    mode: Mode,
    totals: &Snapshot,
    trials: Option<&[Snapshot]>,
) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("TELEMETRY_{name}.json"));
    std::fs::write(&path, render(label, mode, totals, trials))?;
    Ok(path)
}

/// Validate an export document against the v1 schema: the schema tag, the
/// required top-level keys, section shape, and brace balance. Returns a
/// human-readable reason on failure. Deliberately structural rather than a
/// full JSON parse — it catches version skew and truncation, which is what
/// the CI gate needs.
pub fn validate(doc: &str) -> Result<(), String> {
    if !doc.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing or wrong schema tag (want {SCHEMA})"));
    }
    for key in ["\"label\":", "\"mode\":", "\"totals\":"] {
        if !doc.contains(key) {
            return Err(format!("missing required key {key}"));
        }
    }
    for section in ["\"counters\":", "\"gauges\":", "\"histograms\":"] {
        if !doc.contains(section) {
            return Err(format!("totals missing section {section}"));
        }
    }
    let mut depth: i64 = 0;
    for ch in doc.chars() {
        match ch {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced braces".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("truncated document (unbalanced braces)".into());
    }
    Ok(())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::GaugeSnap;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("a.count".into(), 7);
        s.gauges
            .insert("a.depth".into(), GaugeSnap { last: 1, max: 4 });
        s
    }

    #[test]
    fn rendered_export_validates() {
        let doc = render("test", Mode::Full, &sample(), None);
        validate(&doc).expect("render/validate roundtrip");
        let with_trials = render("test", Mode::Full, &sample(), Some(&[sample(), sample()]));
        validate(&with_trials).expect("trials variant");
        assert!(with_trials.contains("\"trials\": ["));
    }

    #[test]
    fn validate_rejects_skew_and_truncation() {
        let doc = render("test", Mode::Summary, &sample(), None);
        let skewed = doc.replace(SCHEMA, "bento-telemetry/v999");
        assert!(validate(&skewed).is_err());
        let truncated = &doc[..doc.len() - 3];
        assert!(validate(truncated).is_err());
    }

    #[test]
    fn label_is_escaped() {
        let doc = render("with \"quotes\"", Mode::Off, &Snapshot::default(), None);
        assert!(doc.contains("with \\\"quotes\\\""));
        validate(&doc).expect("escaped label still validates");
    }
}
