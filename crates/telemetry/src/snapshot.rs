//! Point-in-time metric snapshots: mergeable, ordered, integer-exact.
//!
//! A snapshot is the unit of deterministic export: `BTreeMap`s keyed by
//! metric name (so serialization order never depends on registration or
//! scheduling order) holding only integers (so no float formatting can
//! differ between runs). Two snapshots merge field-by-field with
//! commutative, associative operations; quantiles are *derived* from merged
//! bucket state rather than merged themselves.

use crate::hist::{LogHistogram, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exported gauge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnap {
    /// Most recently set value.
    pub last: u64,
    /// High-water mark.
    pub max: u64,
}

/// Exported histogram state. Buckets are `(bucket_index, count)` pairs for
/// the non-empty buckets only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnap {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// Sparse non-empty buckets.
    pub buckets: Vec<(u8, u64)>,
}

impl HistSnap {
    pub(crate) fn from_hist(h: &LogHistogram) -> HistSnap {
        HistSnap {
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            buckets: h
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(b, &c)| (b as u8, c))
                .collect(),
        }
    }

    pub(crate) fn to_hist(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &(b, c) in &self.buckets {
            h.counts[(b as usize).min(BUCKETS - 1)] = c;
        }
        h.count = self.count;
        h.sum = self.sum;
        h.min = if self.count == 0 { u64::MAX } else { self.min };
        h.max = self.max;
        h
    }

    /// Fold another histogram snapshot into this one; quantiles are
    /// recomputed from the merged buckets.
    pub fn merge(&mut self, other: &HistSnap) {
        let mut h = self.to_hist();
        h.merge(&other.to_hist());
        *self = HistSnap::from_hist(&h);
    }
}

/// A mergeable snapshot of every metric a unit of work recorded.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Level gauges (last + high-water).
    pub gauges: BTreeMap<String, GaugeSnap>,
    /// Distributions (histograms and sim-time spans).
    pub hists: BTreeMap<String, HistSnap>,
}

impl Snapshot {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold `other` into this snapshot. Counter values add, gauge maxima
    /// take the max (with `other` treated as the later observation for
    /// `last`), histogram buckets add. Apart from each gauge's `last` field
    /// the operation is commutative and associative.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(GaugeSnap {
                last: g.last,
                max: 0,
            });
            e.last = g.last;
            e.max = e.max.max(g.max);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(e) => e.merge(h),
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Render the snapshot body as deterministic JSON (three ordered maps),
    /// indented by `indent` spaces. Integers only — byte-identical for equal
    /// snapshots by construction.
    pub fn write_json(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        let _ = writeln!(out, "{pad}\"counters\": {{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let c = comma(i, self.counters.len());
            let _ = writeln!(out, "{pad}  \"{k}\": {v}{c}");
        }
        let _ = writeln!(out, "{pad}}},");
        let _ = writeln!(out, "{pad}\"gauges\": {{");
        for (i, (k, g)) in self.gauges.iter().enumerate() {
            let c = comma(i, self.gauges.len());
            let _ = writeln!(
                out,
                "{pad}  \"{k}\": {{\"last\": {}, \"max\": {}}}{c}",
                g.last, g.max
            );
        }
        let _ = writeln!(out, "{pad}}},");
        let _ = writeln!(out, "{pad}\"histograms\": {{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            let c = comma(i, self.hists.len());
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, n)| format!("[{b}, {n}]"))
                .collect();
            let _ = writeln!(
                out,
                "{pad}  \"{k}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}{c}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99,
                buckets.join(", ")
            );
        }
        let _ = writeln!(out, "{pad}}}");
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counts: &[(&str, u64)]) -> Snapshot {
        let mut s = Snapshot::default();
        for &(k, v) in counts {
            s.counters.insert(k.to_string(), v);
        }
        s
    }

    #[test]
    fn counter_merge_adds() {
        let mut a = snap(&[("x", 2), ("y", 5)]);
        a.merge(&snap(&[("x", 3), ("z", 1)]));
        assert_eq!(a.counters["x"], 5);
        assert_eq!(a.counters["y"], 5);
        assert_eq!(a.counters["z"], 1);
    }

    #[test]
    fn json_is_ordered_and_integer() {
        let mut s = snap(&[("b.two", 2), ("a.one", 1)]);
        s.gauges.insert("g".into(), GaugeSnap { last: 3, max: 9 });
        let mut out = String::new();
        s.write_json(&mut out, 0);
        let a = out.find("a.one").unwrap();
        let b = out.find("b.two").unwrap();
        assert!(a < b, "keys must serialize in sorted order");
        assert!(out.contains("\"g\": {\"last\": 3, \"max\": 9}"));
    }

    #[test]
    fn hist_snap_roundtrips_through_merge() {
        let mut h = LogHistogram::new();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        let s = HistSnap::from_hist(&h);
        let mut a = s.clone();
        a.merge(&s);
        assert_eq!(a.count, 8);
        assert_eq!(a.sum, 2222);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 1000);
    }
}
