//! Metric storage: global name interners plus per-thread value registries.
//!
//! Recording never takes a lock on the hot path — each static metric handle
//! interns its name once (a `OnceLock` around a short `Mutex` critical
//! section), after which every record is a thread-local vector index. Values
//! recorded on different threads never contend and never interleave; the
//! deterministic story is that a unit of work (a bench trial) runs inside
//! [`scoped`], which captures exactly that unit's values as a [`Snapshot`]
//! the caller merges back in a deterministic order.

use crate::hist::LogHistogram;
use crate::snapshot::{GaugeSnap, HistSnap, Snapshot};
use std::cell::RefCell;
use std::sync::Mutex;

/// One interner per metric kind; the slot index is the id a handle caches.
pub(crate) static COUNTER_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
pub(crate) static GAUGE_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
pub(crate) static HIST_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

pub(crate) fn intern(table: &Mutex<Vec<&'static str>>, name: &'static str) -> usize {
    let mut t = table.lock().expect("metric name table poisoned");
    if let Some(i) = t.iter().position(|n| *n == name) {
        return i;
    }
    t.push(name);
    t.len() - 1
}

fn names_of(table: &Mutex<Vec<&'static str>>) -> Vec<&'static str> {
    table.lock().expect("metric name table poisoned").clone()
}

/// Current + high-water value of a gauge.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct GaugeCell {
    pub last: u64,
    pub max: u64,
}

/// Per-thread metric values, indexed by interned slot.
#[derive(Default)]
pub struct Registry {
    counters: Vec<u64>,
    gauges: Vec<GaugeCell>,
    hists: Vec<LogHistogram>,
}

thread_local! {
    static REG: RefCell<Registry> = RefCell::new(Registry::default());
}

#[inline]
fn grow_and<T: Default, R>(v: &mut Vec<T>, slot: usize, f: impl FnOnce(&mut T) -> R) -> R {
    if slot >= v.len() {
        v.resize_with(slot + 1, T::default);
    }
    f(&mut v[slot])
}

#[inline]
pub(crate) fn counter_add(slot: usize, n: u64) {
    REG.with(|r| grow_and(&mut r.borrow_mut().counters, slot, |c| *c += n));
}

#[inline]
pub(crate) fn gauge_set(slot: usize, v: u64) {
    REG.with(|r| {
        grow_and(&mut r.borrow_mut().gauges, slot, |g| {
            g.last = v;
            if v > g.max {
                g.max = v;
            }
        })
    });
}

#[inline]
pub(crate) fn hist_record(slot: usize, v: u64) {
    REG.with(|r| grow_and(&mut r.borrow_mut().hists, slot, |h| h.record(v)));
}

#[inline]
pub(crate) fn hist_merge(slot: usize, other: &LogHistogram) {
    REG.with(|r| grow_and(&mut r.borrow_mut().hists, slot, |h| h.merge(other)));
}

impl Registry {
    fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (name, &v) in names_of(&COUNTER_NAMES).iter().zip(self.counters.iter()) {
            if v != 0 {
                snap.counters.insert(name.to_string(), v);
            }
        }
        for (name, g) in names_of(&GAUGE_NAMES).iter().zip(self.gauges.iter()) {
            if g.max != 0 || g.last != 0 {
                snap.gauges.insert(
                    name.to_string(),
                    GaugeSnap {
                        last: g.last,
                        max: g.max,
                    },
                );
            }
        }
        for (name, h) in names_of(&HIST_NAMES).iter().zip(self.hists.iter()) {
            if !h.is_empty() {
                snap.hists.insert(name.to_string(), HistSnap::from_hist(h));
            }
        }
        snap
    }

    fn merge_snapshot(&mut self, snap: &Snapshot) {
        for (name, &v) in &snap.counters {
            if let Some(i) = lookup(&COUNTER_NAMES, name) {
                grow_and(&mut self.counters, i, |c| *c += v);
            }
        }
        for (name, g) in &snap.gauges {
            if let Some(i) = lookup(&GAUGE_NAMES, name) {
                grow_and(&mut self.gauges, i, |cell| {
                    cell.last = g.last;
                    cell.max = cell.max.max(g.max);
                });
            }
        }
        for (name, h) in &snap.hists {
            if let Some(i) = lookup(&HIST_NAMES, name) {
                grow_and(&mut self.hists, i, |hist| hist.merge(&h.to_hist()));
            }
        }
    }
}

fn lookup(table: &Mutex<Vec<&'static str>>, name: &str) -> Option<usize> {
    table
        .lock()
        .expect("metric name table poisoned")
        .iter()
        .position(|n| *n == name)
}

/// Snapshot the calling thread's metrics (does not reset them).
pub fn snapshot() -> Snapshot {
    REG.with(|r| r.borrow().snapshot())
}

/// Snapshot the calling thread's metrics and reset them to empty.
pub fn take_snapshot() -> Snapshot {
    REG.with(|r| {
        let reg = std::mem::take(&mut *r.borrow_mut());
        reg.snapshot()
    })
}

/// Reset the calling thread's metrics.
pub fn reset() {
    REG.with(|r| {
        *r.borrow_mut() = Registry::default();
    });
}

/// Run `f` against a fresh, empty registry and return its result together
/// with everything it recorded. The caller's own metrics are untouched —
/// this is how a bench trial's telemetry is captured no matter which worker
/// thread the trial lands on.
pub fn scoped<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    let saved = REG.with(|r| std::mem::take(&mut *r.borrow_mut()));
    let out = f();
    let fresh = REG.with(|r| std::mem::replace(&mut *r.borrow_mut(), saved));
    (out, fresh.snapshot())
}

/// Merge a snapshot (e.g. one captured by [`scoped`] on a worker thread)
/// into the calling thread's metrics. Only names already interned by some
/// metric handle are merged; snapshots only ever hold interned names, so
/// nothing is dropped in practice.
pub fn merge(snap: &Snapshot) {
    REG.with(|r| r.borrow_mut().merge_snapshot(snap));
}
