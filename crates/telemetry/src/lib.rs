//! # telemetry — deterministic observability for the Bento reproduction
//!
//! Every layer of the stack (simulator event loop, relay data plane, Bento
//! server, conclave, bench harness) records into this crate's statically
//! declared metrics:
//!
//! ```
//! use telemetry::{Counter, Gauge, Histo, Span};
//!
//! static CELLS: Counter = Counter::new("tor.cells_forwarded");
//! static DEPTH: Gauge = Gauge::new("simnet.queue_depth");
//! static LAT: Histo = Histo::new("bento.invoke_bytes");
//! static RUN: Span = Span::new("simnet.run_until");
//!
//! telemetry::set_mode(telemetry::Mode::Full);
//! CELLS.inc();
//! DEPTH.set(17);
//! LAT.record(4096);
//! RUN.record_ns(1_000, 5_000); // sim-time enter/exit, nanoseconds
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counters["tor.cells_forwarded"], 1);
//! ```
//!
//! ## Determinism rules
//!
//! Unlike a wall-clock profiler, equal runs export byte-identical artifacts:
//!
//! 1. **Values are sim-derived.** Spans record `SimTime` enter/exit (as
//!    nanoseconds), never `Instant`s; counters count simulated events.
//! 2. **Storage is per-thread.** Metrics land in a thread-local registry, so
//!    worker scheduling can't interleave updates.
//! 3. **Units of work are scoped.** A bench trial runs inside
//!    [`scoped`], which captures its metrics as a [`Snapshot`]; the runner
//!    merges trial snapshots in trial-index order, so `--threads 1` and
//!    `--threads N` export the same bytes.
//! 4. **Export is ordered and integer.** Snapshots serialize `BTreeMap`s of
//!    integers; quantiles are integer bucket bounds.
//!
//! ## Cost
//!
//! A record is one atomic mode load plus a thread-local vector index — no
//! allocation, no locking (names intern once through a `OnceLock`). Hot
//! loops accumulate into plain struct fields and flush at phase boundaries
//! (see `simnet::Simulator::run_until`). The `on` feature (default) can be
//! compiled out entirely, turning every record call into nothing; `bench_sim`
//! A/Bs runtime-off against full to hold the overhead gate (<2%).

#![forbid(unsafe_code)]

pub mod export;
pub mod hist;
// With recording compiled out, only the snapshot/merge plumbing is reachable.
#[cfg_attr(not(feature = "on"), allow(dead_code))]
mod registry;
pub mod snapshot;

pub use registry::{merge, reset, scoped, snapshot, take_snapshot};
pub use snapshot::{GaugeSnap, HistSnap, Snapshot};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much the process records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Mode {
    /// Record nothing.
    Off = 0,
    /// Counters and gauges only.
    Summary = 1,
    /// Everything, including histograms and spans.
    Full = 2,
}

impl Mode {
    /// Stable name (matches the `--telemetry` flag values).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Summary => "summary",
            Mode::Full => "full",
        }
    }

    /// Parse a `--telemetry` flag value.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "off" => Some(Mode::Off),
            "summary" => Some(Mode::Summary),
            "full" => Some(Mode::Full),
            _ => None,
        }
    }
}

static MODE: AtomicU8 = AtomicU8::new(Mode::Summary as u8);

/// Set the process-wide recording mode (worker threads see it too).
pub fn set_mode(m: Mode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// The current recording mode. With the `on` feature compiled out this is
/// always [`Mode::Off`].
#[inline]
pub fn mode() -> Mode {
    #[cfg(not(feature = "on"))]
    {
        Mode::Off
    }
    #[cfg(feature = "on")]
    {
        match MODE.load(Ordering::Relaxed) {
            0 => Mode::Off,
            1 => Mode::Summary,
            _ => Mode::Full,
        }
    }
}

/// A monotonically increasing event count. Declare as a `static`.
pub struct Counter {
    name: &'static str,
    #[cfg_attr(not(feature = "on"), allow(dead_code))]
    slot: OnceLock<usize>,
}

impl Counter {
    /// A counter handle with a stable, globally unique name.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "on")]
        if mode() >= Mode::Summary {
            let slot = *self
                .slot
                .get_or_init(|| registry::intern(&registry::COUNTER_NAMES, self.name));
            registry::counter_add(slot, n);
        }
        #[cfg(not(feature = "on"))]
        let _ = n;
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A level (queue depth, residency): records the last-set value and the
/// high-water mark. Declare as a `static`.
pub struct Gauge {
    name: &'static str,
    #[cfg_attr(not(feature = "on"), allow(dead_code))]
    slot: OnceLock<usize>,
}

impl Gauge {
    /// A gauge handle with a stable, globally unique name.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            slot: OnceLock::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Observe the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "on")]
        if mode() >= Mode::Summary {
            let slot = *self
                .slot
                .get_or_init(|| registry::intern(&registry::GAUGE_NAMES, self.name));
            registry::gauge_set(slot, v);
        }
        #[cfg(not(feature = "on"))]
        let _ = v;
    }
}

/// A log-bucketed distribution (bytes, durations, batch sizes). Recorded
/// only in [`Mode::Full`]. Declare as a `static`.
pub struct Histo {
    name: &'static str,
    #[cfg_attr(not(feature = "on"), allow(dead_code))]
    slot: OnceLock<usize>,
}

impl Histo {
    /// A histogram handle with a stable, globally unique name.
    pub const fn new(name: &'static str) -> Histo {
        Histo {
            name,
            slot: OnceLock::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "on")]
        if mode() >= Mode::Full {
            let slot = *self
                .slot
                .get_or_init(|| registry::intern(&registry::HIST_NAMES, self.name));
            registry::hist_record(slot, v);
        }
        #[cfg(not(feature = "on"))]
        let _ = v;
    }

    /// Fold a locally accumulated [`hist::LogHistogram`] into this metric in
    /// one registry access — the batched flush for hot loops that record
    /// into a plain struct field and drain it at a phase boundary (see the
    /// simulator's per-message size histogram).
    #[inline]
    pub fn merge_from(&self, h: &hist::LogHistogram) {
        #[cfg(feature = "on")]
        if mode() >= Mode::Full && !h.is_empty() {
            let slot = *self
                .slot
                .get_or_init(|| registry::intern(&registry::HIST_NAMES, self.name));
            registry::hist_merge(slot, h);
        }
        #[cfg(not(feature = "on"))]
        let _ = h;
    }
}

/// A sim-time span: a scope that records its `SimTime` enter/exit (duration
/// lands in a histogram under the span's name) and how many events it
/// covered (a counter under the same name). Because both endpoints are
/// simulated time, output is byte-identical across runs and thread counts —
/// the deterministic replacement for a wall-clock profiler scope.
pub struct Span {
    dur: Histo,
    events: Counter,
}

impl Span {
    /// A span handle with a stable, globally unique name.
    pub const fn new(name: &'static str) -> Span {
        Span {
            dur: Histo::new(name),
            events: Counter::new(name),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.dur.name()
    }

    /// Record a completed scope from sim-time nanosecond endpoints.
    #[inline]
    pub fn record_ns(&self, enter_ns: u64, exit_ns: u64) {
        self.record_events(enter_ns, exit_ns, 1);
    }

    /// Record a completed scope plus the number of events it covered.
    #[inline]
    pub fn record_events(&self, enter_ns: u64, exit_ns: u64, events: u64) {
        self.events.add(events);
        self.dur.record(exit_ns.saturating_sub(enter_ns));
    }
}

#[cfg(all(test, feature = "on"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static T_COUNT: Counter = Counter::new("test.count");
    static T_GAUGE: Gauge = Gauge::new("test.gauge");
    static T_HIST: Histo = Histo::new("test.hist");
    static T_SPAN: Span = Span::new("test.span");

    /// The mode is process-global and these tests flip it; serialize them.
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn record_snapshot_roundtrip() {
        let _guard = MODE_LOCK.lock().unwrap();
        let ((), snap) = scoped(|| {
            set_mode(Mode::Full);
            T_COUNT.add(3);
            T_GAUGE.set(10);
            T_GAUGE.set(4);
            T_HIST.record(100);
            T_SPAN.record_events(1_000, 3_000, 5);
        });
        assert_eq!(snap.counters["test.count"], 3);
        assert_eq!(snap.counters["test.span"], 5);
        assert_eq!(snap.gauges["test.gauge"], GaugeSnap { last: 4, max: 10 });
        assert_eq!(snap.hists["test.hist"].count, 1);
        assert_eq!(snap.hists["test.span"].sum, 2_000);
    }

    #[test]
    fn mode_gates_recording() {
        let _guard = MODE_LOCK.lock().unwrap();
        let ((), snap) = scoped(|| {
            set_mode(Mode::Off);
            T_COUNT.inc();
            set_mode(Mode::Summary);
            T_COUNT.inc();
            T_HIST.record(1); // dropped: histograms need Full
            set_mode(Mode::Full);
            T_HIST.record(2);
        });
        set_mode(Mode::Summary);
        assert_eq!(snap.counters["test.count"], 1);
        assert_eq!(snap.hists["test.hist"].count, 1);
    }

    #[test]
    fn scoped_does_not_leak_into_caller() {
        let _guard = MODE_LOCK.lock().unwrap();
        set_mode(Mode::Full);
        reset();
        T_COUNT.add(7);
        let ((), inner) = scoped(|| T_COUNT.add(100));
        assert_eq!(inner.counters["test.count"], 100);
        let outer = snapshot();
        assert_eq!(outer.counters["test.count"], 7);
        merge(&inner);
        assert_eq!(snapshot().counters["test.count"], 107);
        reset();
    }

    #[test]
    fn mode_parse_roundtrips() {
        for m in [Mode::Off, Mode::Summary, Mode::Full] {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
        assert_eq!(Mode::parse("verbose"), None);
    }
}
