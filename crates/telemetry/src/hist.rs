//! Log-bucketed histograms with mergeable, integer-exact state.
//!
//! Values are `u64`s (nanoseconds, bytes, counts). Bucket `0` holds the
//! value `0`; bucket `b >= 1` holds `[2^(b-1), 2^b - 1]`, so 65 buckets
//! cover the whole `u64` range and recording is branch-light integer math
//! (`leading_zeros`) with no allocation. Two histograms merge by adding
//! bucket counts, which is associative and commutative — the property the
//! deterministic parallel sweep leans on.

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index of a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Smallest value a bucket can hold.
pub fn bucket_lo(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// Largest value a bucket can hold.
pub fn bucket_hi(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// A log-bucketed histogram. All state is integer, so snapshots of equal
/// sample multisets are byte-identical however the samples were interleaved.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Per-bucket sample counts.
    pub counts: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` while empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket holding
    /// the rank-`q` sample. The exact sample provably lies within the
    /// returned bucket, so the estimate brackets the true quantile to within
    /// one power of two (the bucket error).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Same nearest-rank rule as `simnet::stats::Histogram::quantile`.
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                // Tighten the bounds with the observed extremes.
                return bucket_hi(b).min(self.max).max(self.min.min(self.max));
            }
        }
        self.max
    }

    /// Lower bound of the bucket holding the rank-`q` sample (for
    /// bracketing checks).
    pub fn quantile_lo(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return bucket_lo(b).max(self.min).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(b)), b, "lo of bucket {b}");
            assert_eq!(bucket_of(bucket_hi(b)), b, "hi of bucket {b}");
        }
    }

    #[test]
    fn record_tracks_extremes_and_sum() {
        let mut h = LogHistogram::new();
        for v in [5u64, 0, 1000, 17] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1022);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
    }

    #[test]
    fn quantile_brackets_exact() {
        let mut h = LogHistogram::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 7).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let hi = h.quantile(q);
            let lo = h.quantile_lo(q);
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: exact {exact} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * v);
            } else {
                b.record(v * v);
            }
            both.record(v * v);
        }
        a.merge(&b);
        assert_eq!(a.counts, both.counts);
        assert_eq!(a.count, both.count);
        assert_eq!(a.sum, both.sum);
        assert_eq!(a.min, both.min);
        assert_eq!(a.max, both.max);
    }
}
