//! Property-based tests for the telemetry primitives: the histogram merge
//! algebra (associative + commutative, so trial snapshots can fold in any
//! grouping and still export identical bytes) and quantile bracketing (the
//! log-bucket estimate provably straddles the true sample).

use proptest::collection::vec;
use proptest::prelude::*;
use telemetry::hist::LogHistogram;
use telemetry::snapshot::{GaugeSnap, Snapshot};

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Everything observable about a histogram, in comparable form.
fn key(h: &LogHistogram) -> (Vec<u64>, u64, u64, u64, u64) {
    (h.counts.to_vec(), h.count, h.sum, h.min, h.max)
}

fn merged(a: &LogHistogram, b: &LogHistogram) -> LogHistogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// A snapshot with counters, a gauge, and a histogram derived from `xs`.
fn snap_of(tag: u64, xs: &[u64]) -> Snapshot {
    let mut s = Snapshot::default();
    s.counters.insert("p.count".into(), tag + 1);
    s.counters.insert(format!("p.count{}", tag % 3), 1);
    s.gauges.insert(
        "p.depth".into(),
        GaugeSnap {
            last: tag,
            max: tag * 2,
        },
    );
    let ((), h) = telemetry::scoped(|| {
        static H: telemetry::Histo = telemetry::Histo::new("p.hist");
        telemetry::set_mode(telemetry::Mode::Full);
        for &x in xs {
            H.record(x);
        }
    });
    s.hists = h.hists;
    s
}

proptest! {
    /// Merging histograms commutes: a⊕b == b⊕a.
    #[test]
    fn hist_merge_commutes(
        xs in vec(any::<u64>(), 0..64),
        ys in vec(any::<u64>(), 0..64),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        prop_assert_eq!(key(&merged(&a, &b)), key(&merged(&b, &a)));
    }

    /// Merging histograms associates: (a⊕b)⊕c == a⊕(b⊕c).
    #[test]
    fn hist_merge_associates(
        xs in vec(any::<u64>(), 0..64),
        ys in vec(any::<u64>(), 0..64),
        zs in vec(any::<u64>(), 0..64),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        prop_assert_eq!(
            key(&merged(&merged(&a, &b), &c)),
            key(&merged(&a, &merged(&b, &c)))
        );
    }

    /// Merging two histograms equals recording every sample into one — the
    /// exact property that makes per-trial capture + ordered fold equivalent
    /// to sequential recording.
    #[test]
    fn hist_merge_equals_recording_together(
        xs in vec(any::<u64>(), 0..64),
        ys in vec(any::<u64>(), 0..64),
    ) {
        let all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(
            key(&merged(&hist_of(&xs), &hist_of(&ys))),
            key(&hist_of(&all))
        );
    }

    /// The log-bucket quantile estimate brackets the true nearest-rank
    /// sample: `quantile_lo(q) <= sorted[rank] <= quantile(q)`.
    #[test]
    fn quantiles_bracket_the_true_sample(
        mut xs in vec(any::<u64>(), 1..256),
        q_millis in 0u64..=1000,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = hist_of(&xs);
        xs.sort_unstable();
        let rank = ((xs.len() - 1) as f64 * q).round() as usize;
        let truth = xs[rank];
        prop_assert!(h.quantile_lo(q) <= truth, "lo {} > true {truth}", h.quantile_lo(q));
        prop_assert!(truth <= h.quantile(q), "hi {} < true {truth}", h.quantile(q));
    }

    /// Snapshot merge is associative across all three metric kinds, and the
    /// rendered JSON bytes agree — grouping of trial snapshots can't change
    /// the exported artifact.
    #[test]
    fn snapshot_merge_associates_and_renders_identically(
        ta in 0u64..100, tb in 0u64..100, tc in 0u64..100,
        xs in vec(any::<u64>(), 0..32),
        ys in vec(any::<u64>(), 0..32),
        zs in vec(any::<u64>(), 0..32),
    ) {
        let (a, b, c) = (snap_of(ta, &xs), snap_of(tb, &ys), snap_of(tc, &zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let (mut ja, mut jb) = (String::new(), String::new());
        left.write_json(&mut ja, 0);
        right.write_json(&mut jb, 0);
        prop_assert_eq!(ja, jb);
    }
}
